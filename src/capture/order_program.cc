#include "capture/order_program.h"

#include "core/database.h"

namespace gerel {

OrderProgram BuildOrderProgram(SymbolTable* symbols) {
  OrderProgram out;
  RelationId acdom = AcdomRelation(symbols);
  RelationId min = symbols->Relation("ord#min", 2);
  RelationId max = symbols->Relation("ord#max", 2);
  RelationId lt = symbols->Relation("ord#lt", 3);
  RelationId succ = symbols->Relation("ord#succ", 3);
  RelationId ext = symbols->Relation("ord#ext", 4);
  RelationId newr = symbols->Relation("ord#new", 2);
  RelationId old = symbols->Relation("ord#old", 2);
  RelationId good = symbols->Relation("ord#good", 1);
  RelationId repetition = symbols->Relation("ord#repetition", 1);
  RelationId omission = symbols->Relation("ord#omission", 1);
  out.min = min;
  out.max = max;
  out.succ = succ;
  out.lt = lt;
  out.good = good;

  Term x = symbols->Variable("Xo");
  Term xp = symbols->Variable("Xp");
  Term y = symbols->Variable("Yo");
  Term yp = symbols->Variable("Yp");
  Term z = symbols->Variable("Zo");
  Term u = symbols->Variable("Uo");
  Term v = symbols->Variable("Vo");

  Theory& t = out.theory;
  // (1) acdom(x) → ∃u. min(x, u) ∧ new(x, u).
  t.AddRule(Rule::Positive({Atom(acdom, {x})},
                           {Atom(min, {x, u}), Atom(newr, {x, u})}));
  // (2) new(x, u) ∧ acdom(y) → ∃v. ext(x, y, u, v) ∧ new(y, v).
  t.AddRule(Rule::Positive({Atom(newr, {x, u}), Atom(acdom, {y})},
                           {Atom(ext, {x, y, u, v}), Atom(newr, {y, v})}));
  // (2') ext(x, y, u, v) → succ(x, y, v).
  t.AddRule(Rule::Positive({Atom(ext, {x, y, u, v})},
                           {Atom(succ, {x, y, v})}));
  // (3) new(x, u) → old(x, u).
  t.AddRule(Rule::Positive({Atom(newr, {x, u})}, {Atom(old, {x, u})}));
  // (4) ext(x, y, u, v) ∧ old(x′, u) → old(x′, v).
  t.AddRule(Rule::Positive({Atom(ext, {x, y, u, v}), Atom(old, {xp, u})},
                           {Atom(old, {xp, v})}));
  // (5) ext(x, y, u, v) ∧ min(x′, u) → min(x′, v).
  t.AddRule(Rule::Positive({Atom(ext, {x, y, u, v}), Atom(min, {xp, u})},
                           {Atom(min, {xp, v})}));
  // (6) ext(x, y, u, v) ∧ succ(x′, y′, u) → succ(x′, y′, v).
  t.AddRule(Rule::Positive(
      {Atom(ext, {x, y, u, v}), Atom(succ, {xp, yp, u})},
      {Atom(succ, {xp, yp, v})}));
  // (7) succ(x, y, u) → lt(x, y, u).
  t.AddRule(Rule::Positive({Atom(succ, {x, y, u})}, {Atom(lt, {x, y, u})}));
  // (8) lt(x, y, u) ∧ lt(y, z, u) → lt(x, z, u).
  t.AddRule(Rule::Positive({Atom(lt, {x, y, u}), Atom(lt, {y, z, u})},
                           {Atom(lt, {x, z, u})}));
  // (9) lt(x, x, u) → repetition(u).
  t.AddRule(Rule::Positive({Atom(lt, {x, x, u})}, {Atom(repetition, {u})}));
  // (10) old(y, u) ∧ acdom(x) ∧ ¬old(x, u) → omission(u).
  {
    Rule r;
    r.body.emplace_back(Atom(old, {y, u}), false);
    r.body.emplace_back(Atom(acdom, {x}), false);
    r.body.emplace_back(Atom(old, {x, u}), true);
    r.head.push_back(Atom(omission, {u}));
    t.AddRule(std::move(r));
  }
  // (11) old(x, u) ∧ ¬repetition(u) ∧ ¬omission(u) → good(u).
  {
    Rule r;
    r.body.emplace_back(Atom(old, {x, u}), false);
    r.body.emplace_back(Atom(repetition, {u}), true);
    r.body.emplace_back(Atom(omission, {u}), true);
    r.head.push_back(Atom(good, {u}));
    t.AddRule(std::move(r));
  }
  // (12) new(x, u) ∧ good(u) → max(x, u).
  t.AddRule(Rule::Positive({Atom(newr, {x, u}), Atom(good, {u})},
                           {Atom(max, {x, u})}));
  return out;
}

Result<StratifiedChaseResult> RunOrderProgram(const OrderProgram& program,
                                              const Theory& extra,
                                              const Database& input,
                                              SymbolTable* symbols,
                                              size_t max_atoms) {
  Theory combined = program.theory;
  for (const Rule& r : extra.rules()) combined.AddRule(r);
  ChaseOptions opts;
  // Sound truncation: orderings extending beyond |dom| distinct
  // constants contain a repetition and can never become Good, and every
  // Good ordering's null sits at depth ≤ |dom| + 1.
  Database seeded = input;
  PopulateAcdom(combined, symbols, &seeded);
  RelationId acdom = AcdomRelation(symbols);
  size_t n = seeded.AtomsOf(acdom).size();
  opts.max_null_depth = static_cast<uint32_t>(n + 1);
  opts.max_atoms = max_atoms;
  opts.max_steps = 0;
  opts.populate_acdom = true;
  return StratifiedChase(combined, input, symbols, opts);
}

}  // namespace gerel
