#include "capture/string_database.h"

#include <cmath>
#include <map>

#include "core/check.h"

namespace gerel {

Result<StringDatabase> MakeStringDatabase(const std::vector<int>& word,
                                          const StringSignature& signature,
                                          SymbolTable* symbols) {
  int k = signature.degree;
  if (k < 1) return Status::Error("degree must be >= 1");
  if (word.empty()) return Status::Error("word must be non-empty");
  // Find n with n^k == |word| (Def 20 requires at least two constants).
  size_t n = 2;
  auto power = [&](size_t base) {
    size_t p = 1;
    for (int i = 0; i < k; ++i) p *= base;
    return p;
  };
  while (power(n) < word.size()) ++n;
  if (power(n) != word.size()) {
    return Status::Error("word length " + std::to_string(word.size()) +
                         " is not n^" + std::to_string(k) +
                         " for any n >= 2");
  }
  StringDatabase out;
  out.signature = signature;
  for (size_t i = 0; i < n; ++i) {
    out.domain.push_back(symbols->Constant("d" + std::to_string(i)));
  }
  std::vector<RelationId> symbol_rels;
  for (const std::string& name : signature.alphabet) {
    symbol_rels.push_back(symbols->Relation(name, k));
  }
  // Symbol facts in lexicographic tuple order.
  auto tuple_at = [&](size_t index) {
    std::vector<Term> t(k);
    for (int i = k - 1; i >= 0; --i) {
      t[i] = out.domain[index % n];
      index /= n;
    }
    return t;
  };
  for (size_t i = 0; i < word.size(); ++i) {
    int sym = word[i];
    if (sym < 0 || sym >= static_cast<int>(symbol_rels.size())) {
      return Status::Error("symbol index out of range");
    }
    out.db.Insert(Atom(symbol_rels[sym], tuple_at(i)));
  }
  AppendLexTupleOrderFacts(out.domain, k, symbols, &out.db, signature.order);
  return out;
}

Result<std::vector<int>> ExtractWord(const Database& db,
                                     const StringSignature& signature,
                                     SymbolTable* symbols) {
  int k = signature.degree;
  RelationId firstk =
      symbols->Relation(signature.order.first + std::to_string(k), k);
  RelationId nextk =
      symbols->Relation(signature.order.next + std::to_string(k), 2 * k);
  RelationId lastk =
      symbols->Relation(signature.order.last + std::to_string(k), k);
  std::vector<RelationId> symbol_rels;
  for (const std::string& name : signature.alphabet) {
    symbol_rels.push_back(symbols->Relation(name, k));
  }
  if (db.AtomsOf(firstk).size() != 1 || db.AtomsOf(lastk).size() != 1) {
    return Status::Error("not a string database: first/last not unique");
  }
  // Successor map over tuples.
  std::map<std::vector<Term>, std::vector<Term>> successor;
  for (uint32_t i : db.AtomsOf(nextk)) {
    const Atom& a = db.atom(i);
    std::vector<Term> from(a.args.begin(), a.args.begin() + k);
    std::vector<Term> to(a.args.begin() + k, a.args.end());
    auto [it, inserted] = successor.emplace(std::move(from), std::move(to));
    if (!inserted) {
      return Status::Error("not a string database: branching next chain");
    }
  }
  auto symbol_of = [&](const std::vector<Term>& tuple) -> int {
    int found = -1;
    for (size_t s = 0; s < symbol_rels.size(); ++s) {
      if (db.Contains(Atom(symbol_rels[s], tuple))) {
        if (found >= 0) return -2;  // More than one symbol.
        found = static_cast<int>(s);
      }
    }
    return found;
  };
  std::vector<int> word;
  std::vector<Term> cur = db.atom(db.AtomsOf(firstk)[0]).args;
  const std::vector<Term> last = db.atom(db.AtomsOf(lastk)[0]).args;
  while (true) {
    int s = symbol_of(cur);
    if (s == -1) return Status::Error("tuple carries no symbol");
    if (s == -2) return Status::Error("tuple carries several symbols");
    word.push_back(s);
    if (cur == last) break;
    auto it = successor.find(cur);
    if (it == successor.end()) {
      return Status::Error("next chain does not reach last");
    }
    cur = it->second;
    if (word.size() > db.size()) {
      return Status::Error("next chain has a cycle");
    }
  }
  // The walk must consume the whole successor relation: stray edges mean
  // next<k> is not the successor relation of a total order (Def 20).
  if (successor.size() != word.size() - 1) {
    return Status::Error("next chain has edges outside the first-to-last "
                         "walk");
  }
  return word;
}

}  // namespace gerel
