#include "capture/turing_machine.h"

#include <deque>
#include <map>
#include <string>

#include "core/check.h"

namespace gerel {

namespace {

bool AtEndOverlaps(AtEnd a, AtEnd b) {
  if (a == AtEnd::kAny || b == AtEnd::kAny) return true;
  return a == b;
}

struct Config {
  int state;
  int head;
  std::vector<int> tape;

  friend bool operator<(const Config& a, const Config& b) {
    if (a.state != b.state) return a.state < b.state;
    if (a.head != b.head) return a.head < b.head;
    return a.tape < b.tape;
  }
};

}  // namespace

Status Atm::Validate() const {
  if (num_states <= 0 || alphabet_size <= 0) {
    return Status::Error("machine must have states and symbols");
  }
  if (static_cast<int>(modes.size()) != num_states) {
    return Status::Error("modes must cover every state");
  }
  if (start_state < 0 || start_state >= num_states) {
    return Status::Error("bad start state");
  }
  for (const AtmTransition& t : transitions) {
    if (t.state < 0 || t.state >= num_states ||
        t.symbol < 0 || t.symbol >= alphabet_size) {
      return Status::Error("transition out of range");
    }
    if (t.moves.empty() || t.moves.size() > 2) {
      return Status::Error("transitions must have one or two moves");
    }
    for (const AtmMove& m : t.moves) {
      if (m.write < 0 || m.write >= alphabet_size || m.next_state < 0 ||
          m.next_state >= num_states) {
        return Status::Error("move out of range");
      }
    }
    StateMode mode = modes[t.state];
    if (mode == StateMode::kAccept || mode == StateMode::kReject) {
      return Status::Error("halting states have no transitions");
    }
  }
  // Determinism of dispatch: at most one transition applies per
  // (state, symbol, end-status).
  for (size_t i = 0; i < transitions.size(); ++i) {
    for (size_t j = i + 1; j < transitions.size(); ++j) {
      const AtmTransition& a = transitions[i];
      const AtmTransition& b = transitions[j];
      if (a.state == b.state && a.symbol == b.symbol &&
          AtEndOverlaps(a.at_end, b.at_end)) {
        return Status::Error("overlapping transitions");
      }
    }
  }
  return Status::Ok();
}

Result<AtmSimResult> SimulateAtm(const Atm& machine,
                                 const std::vector<int>& input,
                                 const AtmSimOptions& options) {
  Status valid = machine.Validate();
  if (!valid.ok()) return valid;
  if (input.empty()) return Status::Error("empty input tape");
  for (int s : input) {
    if (s < 0 || s >= machine.alphabet_size) {
      return Status::Error("input symbol out of range");
    }
  }
  AtmSimResult result;
  int tape_len = static_cast<int>(input.size());

  // Forward exploration of the configuration graph.
  std::map<Config, size_t> ids;
  std::vector<Config> configs;
  std::vector<std::vector<int>> children;  // -1 marks an off-tape child.
  std::deque<size_t> frontier;
  auto intern = [&](Config c) -> int {
    auto it = ids.find(c);
    if (it != ids.end()) return static_cast<int>(it->second);
    size_t id = configs.size();
    ids.emplace(c, id);
    configs.push_back(std::move(c));
    children.emplace_back();
    frontier.push_back(id);
    return static_cast<int>(id);
  };
  intern(Config{machine.start_state, 0, input});
  while (!frontier.empty()) {
    if (configs.size() > options.max_configurations) {
      result.complete = false;
      break;
    }
    size_t id = frontier.front();
    frontier.pop_front();
    const Config c = configs[id];
    StateMode mode = machine.modes[c.state];
    if (mode == StateMode::kAccept || mode == StateMode::kReject) continue;
    bool at_end = c.head == tape_len - 1;
    const AtmTransition* applicable = nullptr;
    for (const AtmTransition& t : machine.transitions) {
      if (t.state != c.state || t.symbol != c.tape[c.head]) continue;
      if (t.at_end == AtEnd::kOnlyAtEnd && !at_end) continue;
      if (t.at_end == AtEnd::kOnlyBeforeEnd && at_end) continue;
      applicable = &t;
      break;
    }
    if (applicable == nullptr) continue;  // Stuck: no successors.
    for (const AtmMove& m : applicable->moves) {
      int head = c.head + static_cast<int>(m.dir);
      if (head < 0 || head >= tape_len) {
        children[id].push_back(-1);  // Off-tape: never accepting.
        continue;
      }
      Config next = c;
      next.tape[c.head] = m.write;
      next.head = head;
      next.state = m.next_state;
      // Evaluate intern() first: it may reallocate `children`.
      int child = intern(std::move(next));
      children[id].push_back(child);
    }
  }
  result.configurations = configs.size();

  // Backward least fixpoint of acceptance.
  std::vector<bool> accepting(configs.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < configs.size(); ++i) {
      if (accepting[i]) continue;
      StateMode mode = machine.modes[configs[i].state];
      bool value = false;
      switch (mode) {
        case StateMode::kAccept:
          value = true;
          break;
        case StateMode::kReject:
          value = false;
          break;
        case StateMode::kOr:
          for (int ch : children[i]) {
            if (ch >= 0 && accepting[ch]) value = true;
          }
          break;
        case StateMode::kAnd:
          value = !children[i].empty();
          for (int ch : children[i]) {
            if (ch < 0 || !accepting[ch]) value = false;
          }
          break;
      }
      if (value) {
        accepting[i] = true;
        changed = true;
      }
    }
  }
  result.accepted = accepting[0];
  return result;
}

Atm FirstSymbolIsOneMachine() {
  Atm m;
  m.name = "first-symbol-is-one";
  m.num_states = 3;
  m.start_state = 0;
  m.alphabet_size = 2;
  m.modes = {StateMode::kOr, StateMode::kAccept, StateMode::kReject};
  m.transitions = {
      {0, 1, AtEnd::kAny, {{1, Dir::kStay, 1}}},
      {0, 0, AtEnd::kAny, {{0, Dir::kStay, 2}}},
  };
  return m;
}

Atm EvenParityMachine() {
  Atm m;
  m.name = "even-parity";
  m.num_states = 4;  // 0 = even, 1 = odd, 2 = accept, 3 = reject.
  m.start_state = 0;
  m.alphabet_size = 2;
  m.modes = {StateMode::kOr, StateMode::kOr, StateMode::kAccept,
             StateMode::kReject};
  m.transitions = {
      {0, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 0}}},
      {0, 1, AtEnd::kOnlyBeforeEnd, {{1, Dir::kRight, 1}}},
      {1, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 1}}},
      {1, 1, AtEnd::kOnlyBeforeEnd, {{1, Dir::kRight, 0}}},
      {0, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 2}}},
      {0, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 3}}},
      {1, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 3}}},
      {1, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 2}}},
  };
  return m;
}

Atm AllOnesUniversalMachine() {
  Atm m;
  m.name = "all-ones-universal";
  m.num_states = 4;  // 0 = walk (AND), 1 = check, 2 = accept, 3 = reject.
  m.start_state = 0;
  m.alphabet_size = 2;
  m.modes = {StateMode::kAnd, StateMode::kOr, StateMode::kAccept,
             StateMode::kReject};
  m.transitions = {
      // Branch: verify here AND continue right.
      {0, 0, AtEnd::kOnlyBeforeEnd,
       {{0, Dir::kStay, 1}, {0, Dir::kRight, 0}}},
      {0, 1, AtEnd::kOnlyBeforeEnd,
       {{1, Dir::kStay, 1}, {1, Dir::kRight, 0}}},
      // Last cell: just verify.
      {0, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 1}}},
      {0, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 1}}},
      {1, 0, AtEnd::kAny, {{0, Dir::kStay, 3}}},
      {1, 1, AtEnd::kAny, {{1, Dir::kStay, 2}}},
  };
  return m;
}

Atm SomeOneExistentialMachine() {
  Atm m = AllOnesUniversalMachine();
  m.name = "some-one-existential";
  m.modes[0] = StateMode::kOr;
  return m;
}

Atm FirstEqualsLastMachine() {
  Atm m;
  m.name = "first-equals-last";
  // 0 = start, 1 = saw0-walk, 2 = saw1-walk, 3 = accept, 4 = reject.
  m.num_states = 5;
  m.start_state = 0;
  m.alphabet_size = 2;
  m.modes = {StateMode::kOr, StateMode::kOr, StateMode::kOr,
             StateMode::kAccept, StateMode::kReject};
  m.transitions = {
      // Remember the first symbol. A one-cell word compares with itself.
      {0, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 3}}},
      {0, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 3}}},
      {0, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 1}}},
      {0, 1, AtEnd::kOnlyBeforeEnd, {{1, Dir::kRight, 2}}},
      // Walk right carrying the memory.
      {1, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 1}}},
      {1, 1, AtEnd::kOnlyBeforeEnd, {{1, Dir::kRight, 1}}},
      {2, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 2}}},
      {2, 1, AtEnd::kOnlyBeforeEnd, {{1, Dir::kRight, 2}}},
      // Compare at the end.
      {1, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 3}}},
      {1, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 4}}},
      {2, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 4}}},
      {2, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 3}}},
  };
  return m;
}

Atm BinaryCounterMachine() {
  Atm m;
  m.name = "binary-counter";
  // Symbols: 0 = '0', 1 = '1', 2 = marked '0' (left end), 3 = marked '1'.
  // States: 0 = check (verify marked all-zero input, walk right),
  //         1 = inc (add one at the current cell, carrying right),
  //         2 = rewind (walk left to the marked cell),
  //         3 = accept, 4 = reject.
  m.num_states = 5;
  m.start_state = 0;
  m.alphabet_size = 4;
  m.modes = {StateMode::kOr, StateMode::kOr, StateMode::kOr,
             StateMode::kAccept, StateMode::kReject};
  m.transitions = {
      // check: walk right over {m0, 0}; 1s (or marked 1s) reject. At the
      // last cell, hand over to rewind (which finds the mark) or, on a
      // 1-cell tape, increment directly.
      {0, 2, AtEnd::kOnlyBeforeEnd, {{2, Dir::kRight, 0}}},
      {0, 2, AtEnd::kOnlyAtEnd, {{2, Dir::kStay, 1}}},
      {0, 0, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 0}}},
      {0, 0, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 2}}},
      {0, 1, AtEnd::kAny, {{1, Dir::kStay, 4}}},
      {0, 3, AtEnd::kAny, {{3, Dir::kStay, 4}}},
      // inc: a 0-bit flips to 1 (increment complete — rewind, which
      // immediately bounces off the mark when we are already on it); a
      // 1-bit flips to 0 and carries right; a carry leaving the last
      // cell means the counter wrapped around: accept.
      {1, 2, AtEnd::kAny, {{3, Dir::kStay, 2}}},
      {1, 0, AtEnd::kAny, {{1, Dir::kStay, 2}}},
      {1, 3, AtEnd::kOnlyBeforeEnd, {{2, Dir::kRight, 1}}},
      {1, 1, AtEnd::kOnlyBeforeEnd, {{0, Dir::kRight, 1}}},
      {1, 3, AtEnd::kOnlyAtEnd, {{2, Dir::kStay, 3}}},  // Overflow.
      {1, 1, AtEnd::kOnlyAtEnd, {{0, Dir::kStay, 3}}},  // Overflow.
      // rewind: walk left to the marked cell, then increment again.
      {2, 0, AtEnd::kAny, {{0, Dir::kLeft, 2}}},
      {2, 1, AtEnd::kAny, {{1, Dir::kLeft, 2}}},
      {2, 2, AtEnd::kAny, {{2, Dir::kStay, 1}}},
      {2, 3, AtEnd::kAny, {{3, Dir::kStay, 1}}},
  };
  return m;
}

Atm OnesDivisibleByThreeMachine() {
  Atm m;
  m.name = "ones-divisible-by-three";
  // States 0,1,2 = ones count mod 3; 3 = accept, 4 = reject.
  m.num_states = 5;
  m.start_state = 0;
  m.alphabet_size = 2;
  m.modes = {StateMode::kOr, StateMode::kOr, StateMode::kOr,
             StateMode::kAccept, StateMode::kReject};
  auto step = [](int q, int sym) { return sym == 1 ? (q + 1) % 3 : q; };
  for (int q = 0; q < 3; ++q) {
    for (int sym = 0; sym < 2; ++sym) {
      m.transitions.push_back(
          {q, sym, AtEnd::kOnlyBeforeEnd,
           {{sym, Dir::kRight, step(q, sym)}}});
      m.transitions.push_back(
          {q, sym, AtEnd::kOnlyAtEnd,
           {{sym, Dir::kStay, step(q, sym) == 0 ? 3 : 4}}});
    }
  }
  return m;
}

}  // namespace gerel
