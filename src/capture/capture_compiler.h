// Theorem 4: compiling alternating Turing machines into weakly guarded
// theories over string databases (paper §8).
//
// Configurations are labeled nulls. The compiled theory creates an
// initial configuration, copies the input word into its cells, and for
// each machine transition spawns successor-configuration nulls through a
// step relation stp<t>(U, V1[, V2]) whose atom guards all unsafe
// variables — the construction is weakly guarded by design. Acceptance
// propagates backwards through the step atoms (disjunctively for OR
// states, conjunctively for AND states), and a 0-ary `accept` relation is
// derived at the initial configuration, so
//     ΣM, D ⊨ accept   iff   M accepts w(D).
#ifndef GEREL_CAPTURE_CAPTURE_COMPILER_H_
#define GEREL_CAPTURE_CAPTURE_COMPILER_H_

#include "capture/string_database.h"
#include "capture/turing_machine.h"
#include "chase/chase.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct CaptureCompilation {
  Theory theory;
  RelationId accept_relation = 0;
};

// Compiles `machine` for string databases of the given signature. The
// alphabet of the signature must match the machine's alphabet size.
Result<CaptureCompilation> CompileAtmToWeaklyGuarded(
    const Atm& machine, const StringSignature& signature,
    SymbolTable* symbols);

// Decides ΣM, D ⊨ accept with a bounded chase. `max_steps_hint` bounds
// the machine-run depth explored (the chase of ΣM is infinite in
// general); a positive answer is always sound, a negative answer is
// complete only when every branch of the machine halts within the hint.
Result<bool> DecideAcceptanceViaChase(const CaptureCompilation& compiled,
                                      const Database& string_db,
                                      SymbolTable* symbols,
                                      uint32_t max_steps_hint,
                                      size_t max_atoms = 2000000);

}  // namespace gerel

#endif  // GEREL_CAPTURE_CAPTURE_COMPILER_H_
