// Crash-safe persistence for PreparedKb (DESIGN.md §9).
//
// On-disk layout:
//
//   u64  magic       "GRELSNAP" (0x4752454C534E4150)
//   u32  version     kSnapshotVersion
//   u64  payload_size
//   ...  payload     (see Serialize below)
//   u64  checksum    FNV-1a over the payload bytes
//
// The payload carries everything Prepare computed that is expensive to
// rebuild: the symbol table (names re-interned at their original dense
// ids), the normalized and weakly guarded theories, the compiled Datalog
// program's rule set (so LoadSnapshot skips rewrite/grounding/saturation
// and only re-runs the cheap join-plan compilation), the EDB, the
// materialized model, and the degradation certificate. Every read is
// bounds-checked; truncation, bit-flips, magic/version skew, and
// fingerprint mismatches all surface as errors so callers can fall back
// to a fresh Prepare.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/database.h"
#include "core/fault.h"
#include "service/prepared_kb.h"

namespace gerel {

namespace {

constexpr uint64_t kSnapshotMagic = 0x4752454C534E4150ull;  // "GRELSNAP"
// v2: Mode::kChaseMaterialized joined the mode byte's range; chase-mode
// images serialize an empty placeholder where the compiled program
// theory would be (there is no compiled program to store).
constexpr uint32_t kSnapshotVersion = 2;

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---- Writer -------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void TermBits(Term t) { U32(t.bits()); }
  void Terms(const std::vector<Term>& ts) {
    U32(static_cast<uint32_t>(ts.size()));
    for (Term t : ts) TermBits(t);
  }
  void AtomRec(const Atom& a) {
    U32(a.pred);
    Terms(a.args);
    Terms(a.annotation);
  }
  void RuleRec(const Rule& r) {
    U32(static_cast<uint32_t>(r.body.size()));
    for (const Literal& l : r.body) {
      U8(l.negated ? 1 : 0);
      AtomRec(l.atom);
    }
    U32(static_cast<uint32_t>(r.head.size()));
    for (const Atom& a : r.head) AtomRec(a);
  }
  void TheoryRec(const Theory& t) {
    U32(static_cast<uint32_t>(t.size()));
    for (const Rule& r : t.rules()) RuleRec(r);
  }
  void DatabaseRec(const Database& db) {
    U64(db.size());
    for (const Atom& a : db.atoms()) AtomRec(a);
  }
  void Degradation(const DegradationReason& d) {
    U8(static_cast<uint8_t>(d.stage));
    U8(static_cast<uint8_t>(d.limit));
    U64(d.round);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

// ---- Reader -------------------------------------------------------------

// Bounds-checked cursor over the payload. Every primitive read sets
// ok() = false instead of running past the end, and all composite reads
// bail out early once !ok().
class Reader {
 public:
  Reader(const uint8_t* data, size_t n) : data_(data), n_(n) {}

  bool ok() const { return ok_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return "";
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  Term TermBits() {
    uint32_t bits = U32();
    switch (static_cast<TermKind>(bits >> 30)) {
      case TermKind::kConstant:
        return Term::Constant(bits & 0x3FFFFFFFu);
      case TermKind::kVariable:
        return Term::Variable(bits & 0x3FFFFFFFu);
      case TermKind::kNull:
        return Term::Null(bits & 0x3FFFFFFFu);
      default:
        ok_ = false;
        return Term();
    }
  }
  std::vector<Term> Terms() {
    uint32_t n = U32();
    if (!CheckCount(n, 4)) return {};
    std::vector<Term> out;
    out.reserve(n);
    for (uint32_t i = 0; i < n && ok_; ++i) out.push_back(TermBits());
    return out;
  }
  Atom AtomRec() {
    Atom a;
    a.pred = U32();
    a.args = Terms();
    a.annotation = Terms();
    return a;
  }
  Rule RuleRec() {
    Rule r;
    uint32_t nb = U32();
    if (!CheckCount(nb, 9)) return r;
    r.body.reserve(nb);
    for (uint32_t i = 0; i < nb && ok_; ++i) {
      Literal l;
      l.negated = U8() != 0;
      l.atom = AtomRec();
      r.body.push_back(std::move(l));
    }
    uint32_t nh = U32();
    if (!CheckCount(nh, 8)) return r;
    r.head.reserve(nh);
    for (uint32_t i = 0; i < nh && ok_; ++i) r.head.push_back(AtomRec());
    return r;
  }
  Theory TheoryRec() {
    Theory t;
    uint32_t n = U32();
    if (!CheckCount(n, 8)) return t;
    for (uint32_t i = 0; i < n && ok_; ++i) t.AddRule(RuleRec());
    return t;
  }
  DegradationReason Degradation() {
    DegradationReason d;
    uint8_t stage = U8();
    uint8_t limit = U8();
    d.round = U64();
    if (stage > static_cast<uint8_t>(GovernedStage::kSnapshot) ||
        limit > static_cast<uint8_t>(BudgetLimit::kFault)) {
      ok_ = false;
      return d;
    }
    d.stage = static_cast<GovernedStage>(stage);
    d.limit = static_cast<BudgetLimit>(limit);
    return d;
  }
  bool AtEnd() const { return ok_ && pos_ == n_; }

 private:
  bool Need(size_t k) {
    if (!ok_ || n_ - pos_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }
  // A declared element count cannot exceed the bytes remaining (each
  // element is at least `min_bytes` long); rejects counts forged by
  // corruption before any multi-gigabyte reserve().
  bool CheckCount(uint64_t count, size_t min_bytes) {
    if (!ok_ || count > (n_ - pos_) / min_bytes + 1) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status CorruptError(const std::string& path, const char* what) {
  return Status::Error("snapshot " + path + ": " + what);
}

}  // namespace

Status PreparedKb::SaveSnapshot(const std::string& path) const {
  Writer w;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    w.U64(snapshot_fingerprint_);
    w.U8(static_cast<uint8_t>(mode_));
    uint8_t flags = 0;
    if (rewrite_complete_) flags |= 1;
    if (compile_complete_) flags |= 2;
    if (materialize_complete_) flags |= 4;
    if (theory_has_existentials_) flags |= 8;
    w.U8(flags);
    w.Degradation(rewrite_degradation_);
    w.Degradation(compile_degradation_);
    w.Degradation(materialize_degradation_);
    // Symbol table, in dense-id order so re-interning reproduces ids.
    w.U32(static_cast<uint32_t>(symbols_->NumRelations()));
    for (RelationId id = 0; id < symbols_->NumRelations(); ++id) {
      w.Str(symbols_->RelationName(id));
      w.U32(static_cast<uint32_t>(symbols_->RelationArity(id)));
    }
    w.U32(static_cast<uint32_t>(symbols_->NumConstants()));
    for (uint32_t id = 0; id < symbols_->NumConstants(); ++id) {
      w.Str(symbols_->ConstantName(Term::Constant(id)));
    }
    w.U32(static_cast<uint32_t>(symbols_->NumVariables()));
    for (uint32_t id = 0; id < symbols_->NumVariables(); ++id) {
      w.Str(symbols_->VariableName(Term::Variable(id)));
    }
    w.U32(symbols_->NumNulls());
    w.TheoryRec(normal_);
    w.TheoryRec(weakly_guarded_);
    w.TheoryRec(program_ == nullptr ? Theory() : program_->theory());
    w.DatabaseRec(edb_);
    w.DatabaseRec(model_);
    // Sorted for byte-stable images (the set iterates in hash order).
    std::vector<uint32_t> grounded(grounded_constants_.begin(),
                                   grounded_constants_.end());
    std::sort(grounded.begin(), grounded.end());
    w.U32(static_cast<uint32_t>(grounded.size()));
    for (uint32_t bits : grounded) w.U32(bits);
  }
  const std::vector<uint8_t>& payload = w.bytes();

  Writer image;
  image.U64(kSnapshotMagic);
  image.U32(kSnapshotVersion);
  image.U64(payload.size());
  std::vector<uint8_t> out = image.bytes();
  out.insert(out.end(), payload.begin(), payload.end());
  uint64_t checksum = Fnv1a(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) out.push_back((checksum >> (8 * i)) & 0xFF);

  // Fault injection: corrupt the image in memory so the *write* path is
  // exercised end to end (temp file, rename) and only the load detects it.
  const FaultPlan* fault = GlobalFaultPlan();
  if (fault != nullptr && !out.empty()) {
    // Offsets are clamped into the image (per core/fault.h) so any seeded
    // offset yields a valid corruption; the flip XORs a single bit to
    // model the weakest detectable damage.
    if (fault->snapshot_truncate_at >= 0) {
      size_t at = std::min(static_cast<size_t>(fault->snapshot_truncate_at),
                           out.size() - 1);
      out.resize(at);
    }
    if (fault->snapshot_flip_byte >= 0 && !out.empty()) {
      size_t at = std::min(static_cast<size_t>(fault->snapshot_flip_byte),
                           out.size() - 1);
      out[at] ^= 0x01;
    }
  }

  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("snapshot: cannot open " + tmp + " for writing");
  }
  size_t written = out.empty() ? 0 : std::fwrite(out.data(), 1, out.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != out.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Error("snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("snapshot: cannot rename " + tmp + " to " + path);
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.snapshot_saves;
  return Status::Ok();
}

Result<std::unique_ptr<PreparedKb>> PreparedKb::LoadSnapshot(
    const std::string& path, SymbolTable* symbols,
    const PreparedKbOptions& options, uint64_t expected_fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return CorruptError(path, "cannot open");
  std::vector<uint8_t> image;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    image.insert(image.end(), chunk, chunk + n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return CorruptError(path, "read error");

  // Envelope checks: header present, magic/version match, payload not
  // truncated, checksum intact.
  constexpr size_t kHeader = 8 + 4 + 8;
  if (image.size() < kHeader + 8) return CorruptError(path, "truncated header");
  Reader header(image.data(), kHeader);
  if (header.U64() != kSnapshotMagic) return CorruptError(path, "bad magic");
  uint32_t version = header.U32();
  if (version != kSnapshotVersion) {
    return CorruptError(path, "unsupported version");
  }
  uint64_t payload_size = header.U64();
  if (image.size() != kHeader + payload_size + 8) {
    return CorruptError(path, "truncated payload");
  }
  const uint8_t* payload = image.data() + kHeader;
  Reader trailer(payload + payload_size, 8);
  if (trailer.U64() != Fnv1a(payload, payload_size)) {
    return CorruptError(path, "checksum mismatch");
  }

  Reader r(payload, payload_size);
  uint64_t fingerprint = r.U64();
  if (expected_fingerprint != 0 && fingerprint != 0 &&
      fingerprint != expected_fingerprint) {
    return CorruptError(path, "fingerprint mismatch (stale snapshot)");
  }
  uint8_t mode_byte = r.U8();
  if (mode_byte > static_cast<uint8_t>(Mode::kChaseMaterialized)) {
    return CorruptError(path, "corrupt payload");
  }
  uint8_t flags = r.U8();
  DegradationReason rewrite_deg = r.Degradation();
  DegradationReason compile_deg = r.Degradation();
  DegradationReason materialize_deg = r.Degradation();

  // Re-intern names in dense-id order; `symbols` must be fresh so the
  // ids assigned here equal the ids baked into the serialized terms.
  if (symbols->NumRelations() != 0 || symbols->NumConstants() != 0 ||
      symbols->NumVariables() != 0) {
    return Status::Error("snapshot: symbol table must be empty before load");
  }
  uint32_t num_relations = r.U32();
  for (uint32_t i = 0; i < num_relations && r.ok(); ++i) {
    std::string name = r.Str();
    int arity = static_cast<int>(r.U32());
    if (!r.ok()) break;
    symbols->Relation(name, arity);
  }
  uint32_t num_constants = r.U32();
  for (uint32_t i = 0; i < num_constants && r.ok(); ++i) {
    symbols->Constant(r.Str());
  }
  uint32_t num_variables = r.U32();
  for (uint32_t i = 0; i < num_variables && r.ok(); ++i) {
    symbols->Variable(r.Str());
  }
  symbols->RestoreNullCounter(r.U32());

  Theory normal = r.TheoryRec();
  Theory weakly_guarded = r.TheoryRec();
  Theory program_rules = r.TheoryRec();
  uint64_t edb_atoms = r.U64();
  Database edb;
  for (uint64_t i = 0; i < edb_atoms && r.ok(); ++i) edb.Insert(r.AtomRec());
  uint64_t model_atoms = r.U64();
  Database model;
  for (uint64_t i = 0; i < model_atoms && r.ok(); ++i) {
    model.Insert(r.AtomRec());
  }
  uint32_t num_grounded = r.U32();
  std::unordered_set<uint32_t> grounded;
  for (uint32_t i = 0; i < num_grounded && r.ok(); ++i) grounded.insert(r.U32());
  if (!r.AtEnd()) return CorruptError(path, "corrupt payload");

  std::unique_ptr<PreparedKb> kb(new PreparedKb(symbols, options));
  kb->budget_ = std::make_unique<ExecutionBudget>();
  kb->budget_->Arm(options.budget, GlobalFaultPlan());
  kb->snapshot_fingerprint_ = fingerprint;
  kb->mode_ = static_cast<Mode>(mode_byte);
  kb->rewrite_complete_ = (flags & 1) != 0;
  kb->compile_complete_ = (flags & 2) != 0;
  kb->materialize_complete_ = (flags & 4) != 0;
  kb->theory_has_existentials_ = (flags & 8) != 0;
  kb->rewrite_degradation_ = rewrite_deg;
  kb->compile_degradation_ = compile_deg;
  kb->materialize_degradation_ = materialize_deg;
  kb->normal_ = std::move(normal);
  kb->weakly_guarded_ = std::move(weakly_guarded);
  kb->affected_ = AffectedPositions(kb->normal_);
  kb->acdom_ = AcdomRelation(symbols);
  kb->edb_ = std::move(edb);
  kb->model_ = std::move(model);
  kb->grounded_constants_ = std::move(grounded);
  if (kb->mode_ == Mode::kChaseMaterialized) {
    // Chase mode stores no compiled program (the serialized program
    // theory is an empty placeholder): queries serve from the loaded
    // universal model, and the first write re-chases from normal_.
    kb->BuildDependencyIndex();
  } else {
    // Only the join-plan compilation re-runs; rewrite, grounding, and
    // saturation artifacts are all baked into the stored rule set.
    DatalogOptions dopts = options.datalog;
    dopts.budget = kb->budget_.get();
    // Derivation supports are not persisted: the loaded model keeps
    // supports_valid_ = false, so the first Retract re-materializes (and
    // rebuilds the support log as a side effect). The dependency index is
    // pure program structure, so it is rebuilt here for cache eviction.
    dopts.support_log = &kb->supports_;
    Result<DatalogProgram> program =
        DatalogProgram::Compile(std::move(program_rules), symbols, dopts);
    if (!program.ok()) return program.status();
    kb->program_ =
        std::make_unique<DatalogProgram>(std::move(program).value());
    kb->BuildDependencyIndex();
  }
  {
    std::lock_guard<std::mutex> slock(kb->stats_mu_);
    kb->stats_.snapshot_loads = 1;
    kb->stats_.model_atoms = kb->model_.size();
    kb->stats_.datalog_rules = kb->DatalogRulesLocked();
    kb->stats_.materialization_strategy =
        kb->mode_ == Mode::kChaseMaterialized ? "chase" : "datalog";
    DegradationReason reason = kb->DegradationLocked();
    if (reason.degraded()) kb->stats_.last_degradation = reason;
  }
  return kb;
}

}  // namespace gerel
