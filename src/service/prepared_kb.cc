#include "service/prepared_kb.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "core/join_plan.h"
#include "core/normalize.h"
#include "transform/annotation.h"
#include "transform/canonical.h"
#include "transform/grounding.h"
#include "transform/saturation.h"

namespace gerel {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

PreparedKb::PreparedKb(SymbolTable* symbols, const PreparedKbOptions& options)
    : symbols_(symbols),
      options_(options),
      cache_(options.answer_cache_capacity) {}

Result<std::unique_ptr<PreparedKb>> PreparedKb::Prepare(
    const Theory& theory, const Database& db, SymbolTable* symbols,
    const PreparedKbOptions& options) {
  Clock::time_point start = Clock::now();
  std::unique_ptr<PreparedKb> kb(new PreparedKb(symbols, options));
  kb->budget_ = std::make_unique<ExecutionBudget>();
  kb->budget_->Arm(options.budget, GlobalFaultPlan());
  kb->normal_ = Normalize(theory, symbols);
  Classification c = Classify(kb->normal_);
  if (!c.weakly_frontier_guarded) {
    return Status::Error("knowledge base is not weakly frontier-guarded");
  }
  // Optional pre-flight: advisory diagnostics over the *input* theory
  // (pre-normalization — spans and rule indices match what the user
  // wrote, not the normal form).
  if (options.preflight) {
    kb->preflight_ = Analyze(theory, db, *symbols);
  }
  kb->affected_ = AffectedPositions(kb->normal_);
  for (const Rule& r : kb->normal_.rules()) {
    if (!r.EVars().empty()) kb->theory_has_existentials_ = true;
  }
  double classify_ms = MsSince(start);
  Clock::time_point transform_start = Clock::now();
  // Step 1: rew(Σ) (Thm 2), unless the theory is already weakly guarded.
  // This stage is both query- and data-independent, so it never reruns.
  if (c.weakly_guarded) {
    kb->weakly_guarded_ = kb->normal_;
  } else {
    ExpansionOptions exp = options.pipeline.expansion;
    exp.budget = kb->budget_.get();
    Result<WfgRewriteResult> rew =
        RewriteWfgToWeaklyGuarded(kb->normal_, symbols, exp);
    if (!rew.ok()) return rew.status();
    kb->rewrite_complete_ = rew.value().complete;
    kb->rewrite_degradation_ = rew.value().degradation;
    kb->weakly_guarded_ = std::move(rew.value().theory);
  }
  Classification wc = Classify(kb->weakly_guarded_);
  // Existential-free theories are Datalog mode even with negation:
  // Classify clears `datalog` on negation (the guardedness lattice is
  // negation-free; §8 treats stratified negation as an extension), but
  // the stratified evaluator handles such programs directly — and the
  // Assert path already rematerializes instead of delta-extending them.
  kb->mode_ = (wc.datalog || !kb->theory_has_existentials_)
                  ? Mode::kDatalog
                  : (wc.guarded ? Mode::kGuarded : Mode::kWeaklyGuarded);
  kb->acdom_ = AcdomRelation(symbols);
  kb->edb_ = db;
  Status s = kb->CompileProgram();
  if (!s.ok()) return s;
  double transform_ms = MsSince(transform_start);
  Clock::time_point materialize_start = Clock::now();
  s = kb->MaterializeModel();
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(kb->stats_mu_);
    kb->stats_.prepares = 1;
    kb->stats_.prepare_wall_ms = MsSince(start);
    kb->stats_.prepare_classify_wall_ms = classify_ms;
    kb->stats_.prepare_transform_wall_ms = transform_ms;
    kb->stats_.prepare_materialize_wall_ms = MsSince(materialize_start);
    kb->stats_.model_atoms = kb->model_.size();
    kb->stats_.datalog_rules = kb->program_->theory().size();
    kb->stats_.diagnostics = kb->preflight_.diagnostics.size();
    DegradationReason reason = kb->DegradationLocked();
    if (reason.degraded()) {
      kb->stats_.degraded_prepares = 1;
      kb->stats_.last_degradation = reason;
    }
  }
  return kb;
}

Status PreparedKb::CompileProgram() {
  Theory program_rules;
  bool complete = true;
  DegradationReason degradation;
  SaturationOptions sat_opts = options_.pipeline.saturation;
  sat_opts.budget = budget_.get();
  switch (mode_) {
    case Mode::kDatalog:
      // The theory is its own Datalog translation; its least model over
      // any database is the chase. No grounding, no saturation.
      program_rules = weakly_guarded_;
      break;
    case Mode::kGuarded: {
      // Step 3 only: dat(Σ) (Thm 3) has the same ground atomic
      // consequences as Σ over *every* database, so the translation
      // survives any sequence of asserts.
      Result<SaturationResult> sat =
          Saturate(weakly_guarded_, symbols_, sat_opts);
      if (!sat.ok()) return sat.status();
      complete = sat.value().complete;
      degradation = sat.value().degradation;
      program_rules = std::move(sat.value().datalog);
      break;
    }
    case Mode::kWeaklyGuarded: {
      // Steps 2–3: pg(Σ, D) then dat(·) (§7). The grounding depends on
      // the constant domain of the EDB; Assert re-runs this stage when a
      // genuinely new constant arrives.
      GroundingOptions pg_opts = options_.pipeline.grounding;
      pg_opts.budget = budget_.get();
      Result<GroundingResult> pg =
          PartialGrounding(weakly_guarded_, edb_, pg_opts);
      if (!pg.ok()) return pg.status();
      complete = pg.value().complete;
      degradation = pg.value().degradation;
      Result<SaturationResult> sat =
          Saturate(pg.value().theory, symbols_, sat_opts);
      if (!sat.ok()) return sat.status();
      complete = complete && sat.value().complete;
      if (!degradation.degraded()) degradation = sat.value().degradation;
      program_rules = std::move(sat.value().datalog);
      grounded_constants_.clear();
      for (Term t : edb_.ActiveConstants()) {
        grounded_constants_.insert(t.bits());
      }
      for (Term t : weakly_guarded_.Constants()) {
        grounded_constants_.insert(t.bits());
      }
      break;
    }
  }
  // The compiled program evaluates under the shared prepare/assert
  // budget (budget_ outlives program_).
  DatalogOptions dopts = options_.datalog;
  dopts.budget = budget_.get();
  Result<DatalogProgram> program =
      DatalogProgram::Compile(std::move(program_rules), symbols_, dopts);
  if (!program.ok()) return program.status();
  program_ = std::make_unique<DatalogProgram>(std::move(program).value());
  compile_complete_ = complete;
  compile_degradation_ = degradation;
  return Status::Ok();
}

Status PreparedKb::MaterializeModel() {
  model_ = edb_;
  Result<EvalPassStats> pass = program_->Materialize(&model_);
  if (!pass.ok()) return pass.status();
  materialize_complete_ = pass.value().complete;
  materialize_degradation_ = pass.value().degradation;
  return Status::Ok();
}

bool PreparedKb::QueryCannotHaveNullWitnesses(const Rule& cq) const {
  if (!theory_has_existentials_) return true;
  for (const Literal& l : cq.body) {
    for (uint32_t i = 0; i < l.atom.arity(); ++i) {
      if (affected_.Contains(l.atom.pred, i)) return false;
    }
  }
  return true;
}

Result<PreparedQueryResult> PreparedKb::Query(const Rule& cq) const {
  if (options_.budget.unlimited()) return Query(cq, nullptr);
  ExecutionBudget budget(options_.budget, GlobalFaultPlan());
  return Query(cq, &budget);
}

Result<PreparedQueryResult> PreparedKb::Query(const Rule& cq,
                                              ExecutionBudget* budget) const {
  if (cq.head.size() != 1) {
    return Status::Error("conjunctive query must have a single head atom");
  }
  if (cq.body.empty()) {
    return Status::Error("conjunctive query must have a non-empty body");
  }
  std::vector<Atom> positives;
  positives.reserve(cq.body.size());
  for (const Literal& l : cq.body) {
    if (l.negated) {
      return Status::Error("conjunctive queries must be negation-free");
    }
    positives.push_back(l.atom);
  }
  // Answer variables missing from the body range over the active domain,
  // exactly as GuardConjunctiveQuery arranges for the one-shot pipeline.
  for (Term x : cq.head[0].ArgVars()) {
    bool in_body = false;
    for (const Atom& a : positives) {
      for (Term t : a.AllTerms()) {
        if (t == x) in_body = true;
      }
    }
    if (!in_body) positives.push_back(Atom(acdom_, {x}));
  }
  Clock::time_point start = Clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string key = CanonicalRuleString(cq, *symbols_);
  PreparedQueryResult result;
  AnswerCache::Entry entry;
  if (cache_.Lookup(key, &entry)) {
    result.answers = std::move(entry.answers);
    result.complete = entry.complete;
    result.cache_hit = true;
    if (!result.complete) result.degradation = DegradationLocked();
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.queries;
    ++stats_.cache_hits;
    if (!result.complete) ++stats_.degraded_queries;
    stats_.query_wall_ms += MsSince(start);
    return result;
  }
  // The model contains every certain ground atom, so matching the body
  // join against it yields only certain answers; tuples touching labeled
  // nulls of the input database are filtered like the one-shot pipeline.
  bool truncated = false;
  // Deterministic fault/budget hook before the join starts.
  if (budget != nullptr &&
      !budget->CheckRound(GovernedStage::kQuery, 1, model_.size())) {
    truncated = true;
  }
  if (!truncated) {
    JoinPlan plan(positives);
    CompiledAtom head = plan.Compile(cq.head[0]);
    JoinExecutor exec;
    exec.Reset(plan);
    exec.Execute(
        plan, model_,
        [&](const JoinExecutor& e) {
          if (budget != nullptr &&
              !budget->CheckPoint(GovernedStage::kQuery)) {
            truncated = true;
            return false;
          }
          Atom a = e.Apply(head);
          if (a.IsGroundOverConstants()) result.answers.insert(a.args);
          return true;
        },
        /*db_grows=*/false);
  }
  result.complete = rewrite_complete_ && compile_complete_ &&
                    materialize_complete_ && !truncated &&
                    QueryCannotHaveNullWitnesses(cq);
  if (truncated) {
    result.degradation = budget->reason();
    if (!result.degradation.degraded()) {
      result.degradation.stage = GovernedStage::kQuery;
      result.degradation.limit = BudgetLimit::kDeadline;
    }
  } else if (!result.complete) {
    result.degradation = DegradationLocked();
  }
  // A budget-truncated answer set is transient (a retry with a fresh
  // deadline may do better); only deterministic results are cached.
  if (!truncated) {
    cache_.Insert(key, {result.answers, result.complete});
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.queries;
  ++stats_.cache_misses;
  if (!result.complete) {
    ++stats_.degraded_queries;
    if (result.degradation.degraded()) {
      stats_.last_degradation = result.degradation;
    }
  }
  stats_.query_wall_ms += MsSince(start);
  return result;
}

Result<AssertResult> PreparedKb::Assert(const std::vector<Atom>& facts) {
  for (const Atom& f : facts) {
    if (!f.IsDatabaseAtom()) {
      return Status::Error("asserted facts must be ground");
    }
  }
  Clock::time_point start = Clock::now();
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Fresh deadline for this operation's recompile/rematerialize/delta
  // work (the compiled program's options point at budget_).
  budget_->Arm(options_.budget, GlobalFaultPlan());
  AssertResult out;
  for (const Atom& f : facts) {
    if (edb_.Insert(f)) ++out.new_atoms;
  }
  bool recompile = false;
  if (mode_ == Mode::kWeaklyGuarded) {
    for (const Atom& f : facts) {
      for (Term t : f.AllTerms()) {
        if (t.IsConstant() &&
            grounded_constants_.count(t.bits()) == 0) {
          recompile = true;
        }
      }
    }
  }
  bool rematerialize = recompile || program_->has_negation();
  double transform_ms = 0.0;
  double materialize_ms = 0.0;
  if (recompile) {
    // A constant outside the grounded domain: pg(Σ, D) must be re-run
    // over the grown domain before the model can be trusted.
    Clock::time_point transform_start = Clock::now();
    Status s = CompileProgram();
    if (!s.ok()) return s;
    transform_ms = MsSince(transform_start);
  }
  if (rematerialize) {
    Clock::time_point materialize_start = Clock::now();
    Status s = MaterializeModel();
    if (!s.ok()) return s;
    materialize_ms = MsSince(materialize_start);
    out.delta = false;
  } else {
    // Delta path: seed the semi-naive evaluator with exactly the new
    // atoms (plus acdom facts for any new terms) and let it re-derive
    // only their consequences against the existing fixpoint.
    size_t begin = model_.size();
    for (const Atom& f : facts) model_.Insert(f);
    if (options_.datalog.populate_acdom) {
      size_t inserted_end = model_.size();
      for (size_t i = begin; i < inserted_end; ++i) {
        for (Term t : model_.atom(i).AllTerms()) {
          model_.Insert(Atom(acdom_, {t}));
        }
      }
    }
    Result<EvalPassStats> pass = program_->ExtendWithDelta(&model_, begin);
    if (!pass.ok()) return pass.status();
    out.derived_atoms = pass.value().derived_atoms;
    if (!pass.value().complete) {
      materialize_complete_ = false;
      materialize_degradation_ = pass.value().degradation;
    }
  }
  cache_.Clear();
  DegradationReason reason = DegradationLocked();
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.asserts;
  if (reason.degraded()) {
    ++stats_.degraded_prepares;
    stats_.last_degradation = reason;
  }
  stats_.asserted_atoms += out.new_atoms;
  if (out.delta) {
    ++stats_.delta_asserts;
    stats_.delta_derived_atoms += out.derived_atoms;
  } else {
    ++stats_.rematerializations;
    if (recompile) ++stats_.prepares;
    stats_.prepare_transform_wall_ms += transform_ms;
    stats_.prepare_materialize_wall_ms += materialize_ms;
  }
  stats_.model_atoms = model_.size();
  stats_.datalog_rules = program_->theory().size();
  stats_.assert_wall_ms += MsSince(start);
  return out;
}

ServiceStats PreparedKb::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool PreparedKb::prepare_complete() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rewrite_complete_ && compile_complete_ && materialize_complete_;
}

DegradationReason PreparedKb::DegradationLocked() const {
  if (rewrite_degradation_.degraded()) return rewrite_degradation_;
  if (compile_degradation_.degraded()) return compile_degradation_;
  return materialize_degradation_;
}

DegradationReason PreparedKb::degradation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return DegradationLocked();
}

size_t PreparedKb::model_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return model_.size();
}

size_t PreparedKb::datalog_rules() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return program_->theory().size();
}

}  // namespace gerel
