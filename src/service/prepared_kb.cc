#include "service/prepared_kb.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "chase/chase.h"
#include "core/join_plan.h"
#include "core/normalize.h"
#include "transform/annotation.h"
#include "transform/canonical.h"
#include "transform/grounding.h"
#include "transform/saturation.h"

namespace gerel {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

PreparedKb::PreparedKb(SymbolTable* symbols, const PreparedKbOptions& options)
    : symbols_(symbols),
      options_(options),
      cache_(options.answer_cache_capacity) {}

Result<std::unique_ptr<PreparedKb>> PreparedKb::Prepare(
    const Theory& theory, const Database& db, SymbolTable* symbols,
    const PreparedKbOptions& options) {
  Clock::time_point start = Clock::now();
  std::unique_ptr<PreparedKb> kb(new PreparedKb(symbols, options));
  kb->budget_ = std::make_unique<ExecutionBudget>();
  kb->budget_->Arm(options.budget, GlobalFaultPlan());
  kb->normal_ = Normalize(theory, symbols);
  Classification c = Classify(kb->normal_);
  if (!c.weakly_frontier_guarded) {
    return Status::Error("knowledge base is not weakly frontier-guarded");
  }
  // Optional pre-flight: advisory diagnostics over the *input* theory
  // (pre-normalization — spans and rule indices match what the user
  // wrote, not the normal form).
  if (options.preflight) {
    kb->preflight_ = Analyze(theory, db, *symbols);
  }
  kb->affected_ = AffectedPositions(kb->normal_);
  for (const Rule& r : kb->normal_.rules()) {
    if (!r.EVars().empty()) kb->theory_has_existentials_ = true;
  }
  kb->acdom_ = AcdomRelation(symbols);
  kb->edb_ = db;
  double classify_ms = MsSince(start);
  Clock::time_point transform_start = Clock::now();
  double transform_ms = 0.0;
  Clock::time_point materialize_start = transform_start;

  // Certificate-driven materialization planning: when the acyclicity
  // ladder certifies that the Skolem chase of Σ terminates on every
  // database, the translation stack (rew → pg → dat) buys nothing —
  // chasing the EDB directly is cheaper and yields a *universal* model,
  // against which every CQ is answered completely (the dat(·) model
  // cannot see null witnesses). Negation stays on the Datalog route
  // (the chase is negation-free), as do existential-free theories
  // (their least model already is the chase).
  bool chase_materialized = false;
  if (options.planner && kb->theory_has_existentials_ &&
      !kb->normal_.HasNegation()) {
    TerminationOptions topts = options.termination;
    if (topts.budget == nullptr) topts.budget = kb->budget_.get();
    kb->certificate_ = AnalyzeTermination(kb->normal_, *symbols, topts);
    kb->planner_analyzed_ = true;
    if (kb->certificate_.terminating()) {
      kb->mode_ = Mode::kChaseMaterialized;
      kb->weakly_guarded_ = kb->normal_;
      kb->BuildDependencyIndex();
      transform_ms = MsSince(transform_start);
      materialize_start = Clock::now();
      Status s = kb->MaterializeModel();
      if (!s.ok()) return s;
      if (kb->materialize_complete_) {
        chase_materialized = true;
      } else {
        // The certificate promised termination but a cap or the budget
        // intervened first; serve the translation pipeline's model
        // instead of a degraded chase.
        kb->model_ = Database();
        kb->dependents_.clear();
        kb->materialize_complete_ = true;
        kb->materialize_degradation_ = DegradationReason();
      }
    }
  }
  if (!chase_materialized) {
    // Step 1: rew(Σ) (Thm 2), unless the theory is already weakly
    // guarded. This stage is both query- and data-independent, so it
    // never reruns.
    if (c.weakly_guarded) {
      kb->weakly_guarded_ = kb->normal_;
    } else {
      ExpansionOptions exp = options.pipeline.expansion;
      exp.budget = kb->budget_.get();
      Result<WfgRewriteResult> rew =
          RewriteWfgToWeaklyGuarded(kb->normal_, symbols, exp);
      if (!rew.ok()) return rew.status();
      kb->rewrite_complete_ = rew.value().complete;
      kb->rewrite_degradation_ = rew.value().degradation;
      kb->weakly_guarded_ = std::move(rew.value().theory);
    }
    Classification wc = Classify(kb->weakly_guarded_);
    // Existential-free theories are Datalog mode even with negation:
    // Classify clears `datalog` on negation (the guardedness lattice is
    // negation-free; §8 treats stratified negation as an extension), but
    // the stratified evaluator handles such programs directly — and the
    // Assert path already rematerializes instead of delta-extending them.
    kb->mode_ = (wc.datalog || !kb->theory_has_existentials_)
                    ? Mode::kDatalog
                    : (wc.guarded ? Mode::kGuarded : Mode::kWeaklyGuarded);
    Status s = kb->CompileProgram();
    if (!s.ok()) return s;
    transform_ms = MsSince(transform_start);
    materialize_start = Clock::now();
    s = kb->MaterializeModel();
    if (!s.ok()) return s;
  }
  {
    std::lock_guard<std::mutex> lock(kb->stats_mu_);
    kb->stats_.prepares = 1;
    kb->stats_.prepare_wall_ms = MsSince(start);
    kb->stats_.prepare_classify_wall_ms = classify_ms;
    kb->stats_.prepare_transform_wall_ms = transform_ms;
    kb->stats_.prepare_materialize_wall_ms = MsSince(materialize_start);
    kb->stats_.model_atoms = kb->model_.size();
    kb->stats_.datalog_rules = kb->DatalogRulesLocked();
    kb->stats_.diagnostics = kb->preflight_.diagnostics.size();
    kb->stats_.materialization_strategy =
        chase_materialized ? "chase" : "datalog";
    if (kb->planner_analyzed_) {
      kb->stats_.termination_certificate =
          CertificateKindName(kb->certificate_.kind);
    }
    DegradationReason reason = kb->DegradationLocked();
    if (reason.degraded()) {
      kb->stats_.degraded_prepares = 1;
      kb->stats_.last_degradation = reason;
    }
  }
  return kb;
}

Status PreparedKb::CompileProgram() {
  Theory program_rules;
  bool complete = true;
  DegradationReason degradation;
  SaturationOptions sat_opts = options_.pipeline.saturation;
  sat_opts.budget = budget_.get();
  switch (mode_) {
    case Mode::kDatalog:
      // The theory is its own Datalog translation; its least model over
      // any database is the chase. No grounding, no saturation.
      program_rules = weakly_guarded_;
      break;
    case Mode::kGuarded: {
      // Step 3 only: dat(Σ) (Thm 3) has the same ground atomic
      // consequences as Σ over *every* database, so the translation
      // survives any sequence of asserts.
      Result<SaturationResult> sat =
          Saturate(weakly_guarded_, symbols_, sat_opts);
      if (!sat.ok()) return sat.status();
      complete = sat.value().complete;
      degradation = sat.value().degradation;
      program_rules = std::move(sat.value().datalog);
      break;
    }
    case Mode::kWeaklyGuarded: {
      // Steps 2–3: pg(Σ, D) then dat(·) (§7). The grounding depends on
      // the constant domain of the EDB; Assert re-runs this stage when a
      // genuinely new constant arrives.
      GroundingOptions pg_opts = options_.pipeline.grounding;
      pg_opts.budget = budget_.get();
      Result<GroundingResult> pg =
          PartialGrounding(weakly_guarded_, edb_, pg_opts);
      if (!pg.ok()) return pg.status();
      complete = pg.value().complete;
      degradation = pg.value().degradation;
      Result<SaturationResult> sat =
          Saturate(pg.value().theory, symbols_, sat_opts);
      if (!sat.ok()) return sat.status();
      complete = complete && sat.value().complete;
      if (!degradation.degraded()) degradation = sat.value().degradation;
      program_rules = std::move(sat.value().datalog);
      grounded_constants_.clear();
      for (Term t : edb_.ActiveConstants()) {
        grounded_constants_.insert(t.bits());
      }
      for (Term t : weakly_guarded_.Constants()) {
        grounded_constants_.insert(t.bits());
      }
      break;
    }
    case Mode::kChaseMaterialized:
      // Certified theories never compile a program; MaterializeModel
      // chases `normal_` directly.
      return Status::Error("CompileProgram called in chase mode");
  }
  // The compiled program evaluates under the shared prepare/assert
  // budget (budget_ outlives program_), recording one derivation support
  // per inserted atom for incremental retraction.
  DatalogOptions dopts = options_.datalog;
  dopts.budget = budget_.get();
  dopts.support_log = &supports_;
  Result<DatalogProgram> program =
      DatalogProgram::Compile(std::move(program_rules), symbols_, dopts);
  if (!program.ok()) return program.status();
  program_ = std::make_unique<DatalogProgram>(std::move(program).value());
  compile_complete_ = complete;
  compile_degradation_ = degradation;
  BuildDependencyIndex();
  return Status::Ok();
}

void PreparedKb::BuildDependencyIndex() {
  dependents_.clear();
  // Chase mode has no compiled program; the source rules' body→head
  // edges over-approximate which predicates a write can grow (the chase
  // derives only source predicates, plus acdom handled by the caller).
  const Theory& edges =
      mode_ == Mode::kChaseMaterialized ? normal_ : program_->theory();
  for (const Rule& r : edges.rules()) {
    for (const Literal& l : r.body) {
      // Negated literals count too: under stratified negation a write to
      // the negated relation can flip derivations of the head.
      std::vector<RelationId>& heads = dependents_[l.atom.pred];
      for (const Atom& h : r.head) heads.push_back(h.pred);
    }
  }
}

std::unordered_set<RelationId> PreparedKb::DependencyClosure(
    std::unordered_set<RelationId> preds) const {
  std::vector<RelationId> frontier(preds.begin(), preds.end());
  while (!frontier.empty()) {
    RelationId p = frontier.back();
    frontier.pop_back();
    auto it = dependents_.find(p);
    if (it == dependents_.end()) continue;
    for (RelationId q : it->second) {
      if (preds.insert(q).second) frontier.push_back(q);
    }
  }
  return preds;
}

void PreparedKb::EvictCacheForWrite(std::unordered_set<RelationId> written,
                                    bool domain_changed) {
  // A changed active domain invalidates acdom readers (queries with
  // head-only variables range over acdom) and everything derivable from
  // acdom guards the rewriting introduced.
  if (domain_changed) written.insert(acdom_);
  size_t retained = 0;
  size_t evicted =
      cache_.EvictReading(DependencyClosure(std::move(written)), &retained);
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.cache_evicted_entries += evicted;
  stats_.cache_retained_entries += retained;
}

Status PreparedKb::MaterializeModel() {
  if (mode_ == Mode::kChaseMaterialized) {
    // Direct Skolem chase of the source theory over the EDB. The
    // termination certificate bounds the run; the caps and budget only
    // stop pathologies (an unsaturated result degrades queries to
    // complete=false like any other truncated materialization).
    ChaseOptions copts;
    copts.max_steps = options_.chase_max_steps;
    copts.max_atoms = options_.chase_max_atoms;
    copts.semi_oblivious = true;
    copts.populate_acdom = options_.datalog.populate_acdom;
    copts.num_threads =
        options_.datalog.num_threads < 1
            ? 1
            : static_cast<size_t>(options_.datalog.num_threads);
    copts.budget = budget_.get();
    ChaseResult run = Chase(normal_, edb_, symbols_, copts);
    model_ = std::move(run.database);
    materialize_complete_ = run.saturated;
    materialize_degradation_ = run.degradation;
    // Derivation supports are recorded by the compiled program only;
    // chase mode always re-chases on Retract.
    supports_valid_ = false;
    if (run.saturated) {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.chase_materializations;
    }
    return Status::Ok();
  }
  model_ = edb_;
  Result<EvalPassStats> pass = program_->Materialize(&model_);
  if (!pass.ok()) return pass.status();
  materialize_complete_ = pass.value().complete;
  materialize_degradation_ = pass.value().degradation;
  // The support log only licenses DRed over a complete negation-free
  // fixpoint: a truncated pass may have skipped derivations whose
  // absence a later overdelete would misread.
  supports_valid_ = pass.value().complete && !program_->has_negation();
  return Status::Ok();
}

bool PreparedKb::QueryCannotHaveNullWitnesses(const Rule& cq) const {
  // A chase-materialized model is universal: matching the CQ against it
  // decides the certain answers even when the witnesses are nulls
  // (answer tuples themselves stay filtered to constants).
  if (mode_ == Mode::kChaseMaterialized) return true;
  if (!theory_has_existentials_) return true;
  for (const Literal& l : cq.body) {
    for (uint32_t i = 0; i < l.atom.arity(); ++i) {
      if (affected_.Contains(l.atom.pred, i)) return false;
    }
  }
  return true;
}

Result<PreparedQueryResult> PreparedKb::Query(const Rule& cq) const {
  if (options_.budget.unlimited()) return Query(cq, nullptr);
  ExecutionBudget budget(options_.budget, GlobalFaultPlan());
  return Query(cq, &budget);
}

Result<PreparedQueryResult> PreparedKb::Query(const Rule& cq,
                                              ExecutionBudget* budget) const {
  if (cq.head.size() != 1) {
    return Status::Error("conjunctive query must have a single head atom");
  }
  if (cq.body.empty()) {
    return Status::Error("conjunctive query must have a non-empty body");
  }
  std::vector<Atom> positives;
  positives.reserve(cq.body.size());
  for (const Literal& l : cq.body) {
    if (l.negated) {
      return Status::Error("conjunctive queries must be negation-free");
    }
    positives.push_back(l.atom);
  }
  // Answer variables missing from the body range over the active domain,
  // exactly as GuardConjunctiveQuery arranges for the one-shot pipeline.
  for (Term x : cq.head[0].ArgVars()) {
    bool in_body = false;
    for (const Atom& a : positives) {
      for (Term t : a.AllTerms()) {
        if (t == x) in_body = true;
      }
    }
    if (!in_body) positives.push_back(Atom(acdom_, {x}));
  }
  Clock::time_point start = Clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string key = CanonicalRuleString(cq, *symbols_);
  PreparedQueryResult result;
  AnswerCache::Entry entry;
  if (cache_.Lookup(key, &entry)) {
    result.answers = std::move(entry.answers);
    result.complete = entry.complete;
    result.cache_hit = true;
    if (!result.complete) result.degradation = DegradationLocked();
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.queries;
    ++stats_.cache_hits;
    if (!result.complete) ++stats_.degraded_queries;
    stats_.query_wall_ms += MsSince(start);
    return result;
  }
  // The model contains every certain ground atom, so matching the body
  // join against it yields only certain answers; tuples touching labeled
  // nulls of the input database are filtered like the one-shot pipeline.
  bool truncated = false;
  // Deterministic fault/budget hook before the join starts.
  if (budget != nullptr &&
      !budget->CheckRound(GovernedStage::kQuery, 1, model_.size())) {
    truncated = true;
  }
  if (!truncated) {
    JoinPlan plan(positives);
    CompiledAtom head = plan.Compile(cq.head[0]);
    JoinExecutor exec;
    exec.Reset(plan);
    exec.Execute(
        plan, model_,
        [&](const JoinExecutor& e) {
          if (budget != nullptr &&
              !budget->CheckPoint(GovernedStage::kQuery)) {
            truncated = true;
            return false;
          }
          Atom a = e.Apply(head);
          if (a.IsGroundOverConstants()) result.answers.insert(a.args);
          return true;
        },
        /*db_grows=*/false);
  }
  result.complete = rewrite_complete_ && compile_complete_ &&
                    materialize_complete_ && !truncated &&
                    QueryCannotHaveNullWitnesses(cq);
  if (truncated) {
    result.degradation = budget->reason();
    if (!result.degradation.degraded()) {
      result.degradation.stage = GovernedStage::kQuery;
      result.degradation.limit = BudgetLimit::kDeadline;
    }
  } else if (!result.complete) {
    result.degradation = DegradationLocked();
  }
  // A budget-truncated answer set is transient (a retry with a fresh
  // deadline may do better); only deterministic results are cached. The
  // entry is tagged with the predicates the join read (body relations
  // plus any appended acdom guards) so writes can invalidate it by
  // dependency instead of clearing the cache.
  if (!truncated) {
    std::vector<RelationId> reads;
    reads.reserve(positives.size());
    for (const Atom& a : positives) reads.push_back(a.pred);
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
    cache_.Insert(key, {result.answers, result.complete, std::move(reads)});
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.queries;
  ++stats_.cache_misses;
  if (!result.complete) {
    ++stats_.degraded_queries;
    if (result.degradation.degraded()) {
      stats_.last_degradation = result.degradation;
    }
  }
  stats_.query_wall_ms += MsSince(start);
  return result;
}

Result<AssertResult> PreparedKb::Assert(const std::vector<Atom>& facts) {
  for (const Atom& f : facts) {
    if (!f.IsDatabaseAtom()) {
      return Status::Error("asserted facts must be ground");
    }
  }
  Clock::time_point start = Clock::now();
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Fresh deadline for this operation's recompile/rematerialize/delta
  // work (the compiled program's options point at budget_).
  budget_->Arm(options_.budget, GlobalFaultPlan());
  AssertResult out;
  // Whether the write grows the active domain (a term the model's acdom
  // does not know yet); decides if acdom readers must be evicted.
  bool domain_changed = false;
  for (const Atom& f : facts) {
    for (Term t : f.AllTerms()) {
      if (!model_.Contains(Atom(acdom_, {t}))) domain_changed = true;
    }
  }
  for (const Atom& f : facts) {
    if (edb_.Insert(f)) ++out.new_atoms;
  }
  if (mode_ == Mode::kChaseMaterialized && out.new_atoms == 0) {
    // Every asserted fact was already in the EDB: the chase would
    // rebuild the identical model, so skip the re-chase and report a
    // no-op delta (replicas need no resync).
    out.delta = true;
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.asserts;
    ++stats_.delta_asserts;
    stats_.assert_wall_ms += MsSince(start);
    return out;
  }
  bool recompile = false;
  if (mode_ == Mode::kWeaklyGuarded) {
    for (const Atom& f : facts) {
      for (Term t : f.AllTerms()) {
        if (t.IsConstant() &&
            grounded_constants_.count(t.bits()) == 0) {
          recompile = true;
        }
      }
    }
  }
  // Chase mode has no delta path: the semi-naive evaluator cannot extend
  // a chase-built model, so every assert re-chases from the grown EDB.
  bool rematerialize = recompile || mode_ == Mode::kChaseMaterialized ||
                       program_->has_negation();
  double transform_ms = 0.0;
  double materialize_ms = 0.0;
  if (recompile) {
    // A constant outside the grounded domain: pg(Σ, D) must be re-run
    // over the grown domain before the model can be trusted.
    Clock::time_point transform_start = Clock::now();
    Status s = CompileProgram();
    if (!s.ok()) return s;
    transform_ms = MsSince(transform_start);
  }
  if (rematerialize) {
    Clock::time_point materialize_start = Clock::now();
    Status s = MaterializeModel();
    if (!s.ok()) return s;
    materialize_ms = MsSince(materialize_start);
    out.delta = false;
  } else {
    // Delta path: seed the semi-naive evaluator with exactly the new
    // atoms (plus acdom facts for any new terms) and let it re-derive
    // only their consequences against the existing fixpoint.
    size_t begin = model_.size();
    for (const Atom& f : facts) model_.Insert(f);
    if (options_.datalog.populate_acdom) {
      size_t inserted_end = model_.size();
      for (size_t i = begin; i < inserted_end; ++i) {
        for (Term t : model_.atom(i).AllTerms()) {
          model_.Insert(Atom(acdom_, {t}));
        }
      }
    }
    Result<EvalPassStats> pass = program_->ExtendWithDelta(&model_, begin);
    if (!pass.ok()) return pass.status();
    out.derived_atoms = pass.value().derived_atoms;
    if (!pass.value().complete) {
      materialize_complete_ = false;
      materialize_degradation_ = pass.value().degradation;
      supports_valid_ = false;
    }
  }
  if (recompile) {
    // The rule set itself changed (fresh grounding): every read-set is
    // tagged against the old program, so nothing can be kept.
    cache_.Clear();
  } else {
    std::unordered_set<RelationId> written;
    for (const Atom& f : facts) written.insert(f.pred);
    EvictCacheForWrite(std::move(written), domain_changed);
  }
  DegradationReason reason = DegradationLocked();
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.asserts;
  if (reason.degraded()) {
    ++stats_.degraded_prepares;
    stats_.last_degradation = reason;
  }
  stats_.asserted_atoms += out.new_atoms;
  if (out.delta) {
    ++stats_.delta_asserts;
    stats_.delta_derived_atoms += out.derived_atoms;
  } else {
    ++stats_.rematerializations;
    if (recompile) ++stats_.prepares;
    stats_.prepare_transform_wall_ms += transform_ms;
    stats_.prepare_materialize_wall_ms += materialize_ms;
  }
  stats_.model_atoms = model_.size();
  stats_.datalog_rules = DatalogRulesLocked();
  stats_.assert_wall_ms += MsSince(start);
  return out;
}

Result<RetractResult> PreparedKb::Retract(const std::vector<Atom>& facts) {
  for (const Atom& f : facts) {
    if (!f.IsDatabaseAtom()) {
      return Status::Error("retracted facts must be ground");
    }
  }
  Clock::time_point start = Clock::now();
  std::unique_lock<std::shared_mutex> lock(mu_);
  budget_->Arm(options_.budget, GlobalFaultPlan());
  // Validate before touching anything: retracting an unknown fact or a
  // derived-only atom is a clean no-op error.
  std::unordered_set<Atom, AtomHash> targets;
  for (const Atom& f : facts) {
    if (!edb_.Contains(f)) {
      return Status::Error("cannot retract a fact that is not in the EDB");
    }
    targets.insert(f);
  }
  RetractResult out;
  out.removed_atoms = targets.size();
  if (targets.empty()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.retracts;
    ++stats_.retracts_dred;
    stats_.retract_wall_ms += MsSince(start);
    return out;
  }

  // Which active-domain terms vanish with the retracted facts: count
  // every term occurrence in the (non-acdom) EDB, subtract the retracted
  // occurrences, and a term whose count hits zero leaves the domain
  // unless it is a program constant (PopulateAcdom's two sources).
  std::unordered_map<uint32_t, size_t> occurrences;
  for (const Atom& a : edb_.atoms()) {
    if (a.pred == acdom_) continue;
    for (Term t : a.AllTerms()) ++occurrences[t.bits()];
  }
  // The exclusion set must be the *source* theory's constants, not the
  // compiled program's: in wg mode the partial grounding bakes EDB
  // constants into rules, so the compiled theory "contains" every domain
  // constant and nothing would ever vanish — leaving stale acdom atoms
  // that a fresh Prepare would not derive.
  std::unordered_set<uint32_t> program_constants;
  for (Term t : weakly_guarded_.Constants()) {
    program_constants.insert(t.bits());
  }
  bool null_retracted = false;
  for (const Atom& f : targets) {
    for (Term t : f.AllTerms()) {
      if (t.IsNull()) null_retracted = true;
    }
    if (f.pred == acdom_) continue;
    for (Term t : f.AllTerms()) --occurrences[t.bits()];
  }
  std::vector<Term> vanished;
  std::unordered_set<uint32_t> vanished_seen;
  for (const Atom& f : targets) {
    if (f.pred == acdom_) continue;
    for (Term t : f.AllTerms()) {
      if (occurrences[t.bits()] == 0 &&
          program_constants.count(t.bits()) == 0 &&
          vanished_seen.insert(t.bits()).second) {
        vanished.push_back(t);
      }
    }
  }

  // In wg mode the compiled program is dat(pg(Σ, D)): the grounding is a
  // function of the constant domain, so a shrinking domain invalidates
  // it (stale acdom/grounded constants would over-answer relative to a
  // fresh Prepare) and a retracted labeled null is outside what the
  // grounding reasons about at all.
  bool wg_domain_shrinks = false;
  if (mode_ == Mode::kWeaklyGuarded) {
    for (Term t : vanished) {
      if (t.IsConstant()) wg_domain_shrinks = true;
    }
  }
  bool recompile = mode_ == Mode::kWeaklyGuarded &&
                   (wg_domain_shrinks || null_retracted);
  bool fallback = recompile || mode_ == Mode::kChaseMaterialized ||
                  program_->has_negation() || !supports_valid_;

  // The surviving EDB, needed by both paths (an overdeleted atom that is
  // still a base fact must not be deleted).
  Database new_edb;
  for (const Atom& a : edb_.atoms()) {
    if (targets.count(a) == 0) new_edb.Insert(a);
  }

  size_t overdeleted = 0;
  size_t rederived = 0;
  bool dred_ok = false;
  if (!fallback) {
    Database new_model;
    SupportLog new_log;
    dred_ok = RetractDRed(targets, vanished, new_edb, &new_model, &new_log,
                          &overdeleted, &rederived);
    if (dred_ok) {
      edb_ = std::move(new_edb);
      model_ = std::move(new_model);
      supports_ = std::move(new_log);
      supports_valid_ = true;
      out.overdeleted_atoms = overdeleted;
      out.rederived_atoms = rederived;
    }
  }
  double transform_ms = 0.0;
  double materialize_ms = 0.0;
  if (!dred_ok) {
    // Fallback: rebuild the model from the surviving EDB (recompiling
    // the data-dependent stages first when the wg grounding is stale).
    // A budget that tripped mid-DRed degrades this pass too — the model
    // stays a sound under-approximation, never unsound.
    edb_ = std::move(new_edb);
    if (recompile) {
      Clock::time_point transform_start = Clock::now();
      Status s = CompileProgram();
      if (!s.ok()) return s;
      transform_ms = MsSince(transform_start);
    }
    Clock::time_point materialize_start = Clock::now();
    Status s = MaterializeModel();
    if (!s.ok()) return s;
    materialize_ms = MsSince(materialize_start);
    out.delta = false;
  }
  if (recompile) {
    cache_.Clear();
  } else {
    std::unordered_set<RelationId> written;
    for (const Atom& f : targets) written.insert(f.pred);
    EvictCacheForWrite(std::move(written), !vanished.empty());
  }
  DegradationReason reason = DegradationLocked();
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.retracts;
  stats_.retracted_atoms += out.removed_atoms;
  if (out.delta) {
    ++stats_.retracts_dred;
    stats_.overdeleted_atoms += out.overdeleted_atoms;
    stats_.rederived_atoms += out.rederived_atoms;
  } else {
    ++stats_.retracts_rematerialized;
    ++stats_.rematerializations;
    if (recompile) ++stats_.prepares;
    stats_.prepare_transform_wall_ms += transform_ms;
    stats_.prepare_materialize_wall_ms += materialize_ms;
  }
  if (reason.degraded()) {
    ++stats_.degraded_prepares;
    stats_.last_degradation = reason;
  }
  stats_.model_atoms = model_.size();
  stats_.datalog_rules = DatalogRulesLocked();
  stats_.retract_wall_ms += MsSince(start);
  return out;
}

bool PreparedKb::RetractDRed(const std::unordered_set<Atom, AtomHash>& targets,
                             const std::vector<Term>& vanished,
                             const Database& new_edb, Database* new_model,
                             SupportLog* new_log, size_t* overdeleted,
                             size_t* rederived) const {
  const size_t n = model_.size();
  std::vector<uint8_t> deleted(n, 0);
  auto find_index = [&](const Atom& a) -> int64_t {
    const std::vector<uint32_t>* postings = &model_.AtomsOf(a.pred);
    if (model_.position_index_enabled() && !a.args.empty()) {
      const std::vector<uint32_t>& cand = model_.AtomsAt(a.pred, 0, a.args[0]);
      if (cand.size() < postings->size()) postings = &cand;
    }
    for (uint32_t ai : *postings) {
      if (model_.atom(ai) == a) return ai;
    }
    return -1;
  };
  // Seed deletions: the retracted facts themselves plus the acdom atoms
  // of terms leaving the active domain.
  for (const Atom& f : targets) {
    int64_t i = find_index(f);
    if (i >= 0) deleted[i] = 1;  // EDB ⊆ model, so this always hits.
  }
  for (Term t : vanished) {
    int64_t i = find_index(Atom(acdom_, {t}));
    if (i >= 0) deleted[i] = 1;
  }
  size_t seeds = 0;
  for (size_t i = 0; i < n; ++i) seeds += deleted[i];

  // Overdelete: one forward pass suffices because supports are
  // well-founded — every recorded body index precedes the derived
  // atom's index, so deleted[] is final for all support members by the
  // time atom i is visited.
  if (!budget_->CheckRound(GovernedStage::kDatalog, 1, n)) return false;
  for (size_t i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    if (!budget_->CheckPoint(GovernedStage::kDatalog)) return false;
    SupportLog::Entry e = supports_.Of(i);
    if (e.rule == SupportLog::kNoRule) continue;  // Base fact.
    bool dead = false;
    for (uint32_t p = e.begin; p < e.end; ++p) {
      if (deleted[supports_.pool[p]]) {
        dead = true;
        break;
      }
    }
    if (!dead) continue;
    // An atom that is still a base fact survives its lost witness.
    if (new_edb.Contains(model_.atom(i))) continue;
    deleted[i] = 1;
  }
  size_t total_deleted = 0;
  for (size_t i = 0; i < n; ++i) total_deleted += deleted[i];
  *overdeleted = total_deleted - seeds;

  // Prune: rebuild the surviving model in order, remapping supports.
  // A surviving atom whose witness cites a deleted atom is exactly the
  // base-fact case above; it degrades to a no-rule entry.
  std::vector<uint32_t> remap(n, 0);
  std::vector<uint32_t> body_scratch;
  for (size_t i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    new_model->Insert(model_.atom(i));
    uint32_t ni = static_cast<uint32_t>(new_model->size() - 1);
    remap[i] = ni;
    SupportLog::Entry e = supports_.Of(i);
    if (e.rule == SupportLog::kNoRule) continue;
    bool stale = false;
    body_scratch.clear();
    for (uint32_t p = e.begin; p < e.end; ++p) {
      if (deleted[supports_.pool[p]]) {
        stale = true;
        break;
      }
      body_scratch.push_back(remap[supports_.pool[p]]);
    }
    if (stale) continue;
    new_log->Record(ni, e.rule, body_scratch.data(), body_scratch.size());
  }

  // Rederive: an overdeleted atom may still be entailed by the pruned
  // model (a second derivation the single-witness log did not record, or
  // via atoms rederived this round). For each candidate, unify it with a
  // rule head and join the rule's body over the new model; repeat until
  // a pass restores nothing. This converges to exactly the least model
  // of the surviving EDB: every candidate is in the old model, so no
  // new atoms can appear, and any entailed candidate is eventually
  // restored once its body atoms are.
  const Theory& th = program_->theory();
  std::unordered_map<RelationId, std::vector<std::pair<uint32_t, uint32_t>>>
      heads_by_pred;
  for (uint32_t ri = 0; ri < th.rules().size(); ++ri) {
    const Rule& r = th.rules()[ri];
    for (uint32_t hi = 0; hi < r.head.size(); ++hi) {
      heads_by_pred[r.head[hi].pred].emplace_back(ri, hi);
    }
  }
  std::vector<Atom> candidates;
  candidates.reserve(total_deleted);
  for (size_t i = 0; i < n; ++i) {
    if (deleted[i]) candidates.push_back(model_.atom(i));
  }
  JoinExecutor exec;
  auto try_rederive = [&](const Atom& goal, uint32_t* out_rule,
                          std::vector<uint32_t>* out_body) -> bool {
    auto it = heads_by_pred.find(goal.pred);
    if (it == heads_by_pred.end()) return false;
    for (auto [ri, hi] : it->second) {
      const Rule& r = th.rules()[ri];
      const Atom& h = r.head[hi];
      if (h.args.size() != goal.args.size() ||
          h.annotation.size() != goal.annotation.size()) {
        continue;
      }
      // Unify the ground goal against the head atom: constants must
      // match, variables bind consistently.
      std::vector<std::pair<Term, Term>> binds;
      bool ok = true;
      auto unify = [&](Term ht, Term gt) {
        if (!ok) return;
        if (!ht.IsVariable()) {
          if (ht != gt) ok = false;
          return;
        }
        for (const auto& [v, val] : binds) {
          if (v == ht) {
            if (val != gt) ok = false;
            return;
          }
        }
        binds.emplace_back(ht, gt);
      };
      for (size_t k = 0; k < h.args.size(); ++k) unify(h.args[k], goal.args[k]);
      for (size_t k = 0; k < h.annotation.size(); ++k) {
        unify(h.annotation[k], goal.annotation[k]);
      }
      if (!ok) continue;
      std::vector<Atom> positives;
      positives.reserve(r.body.size());
      for (const Literal& l : r.body) positives.push_back(l.atom);
      std::vector<Term> pre_bound;
      pre_bound.reserve(binds.size());
      for (const auto& [v, val] : binds) pre_bound.push_back(v);
      JoinPlan plan(positives, pre_bound);
      exec.Reset(plan);
      for (const auto& [v, val] : binds) exec.Bind(v, val);
      bool found = false;
      exec.Execute(
          plan, *new_model,
          [&](const JoinExecutor& e) {
            *out_rule = ri;
            *out_body = e.MatchedAtomIndices();
            found = true;
            return false;  // The first witness suffices.
          },
          /*db_grows=*/false);
      if (found) return true;
    }
    return false;
  };
  std::vector<char> restored(candidates.size(), 0);
  uint64_t round = 1;
  bool progress = true;
  while (progress) {
    progress = false;
    if (!budget_->CheckRound(GovernedStage::kDatalog, ++round,
                             new_model->size())) {
      return false;
    }
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      if (restored[ci]) continue;
      if (!budget_->CheckPoint(GovernedStage::kDatalog)) return false;
      uint32_t rule = 0;
      body_scratch.clear();
      if (!try_rederive(candidates[ci], &rule, &body_scratch)) continue;
      new_model->Insert(candidates[ci]);
      new_log->Record(new_model->size() - 1, rule, body_scratch.data(),
                      body_scratch.size());
      restored[ci] = 1;
      ++*rederived;
      progress = true;
    }
  }
  return true;
}

std::vector<Atom> PreparedKb::ModelAtoms() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return model_.AtomsVector();
}

std::vector<Atom> PreparedKb::EdbAtoms() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return edb_.AtomsVector();
}

ServiceStats PreparedKb::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool PreparedKb::prepare_complete() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rewrite_complete_ && compile_complete_ && materialize_complete_;
}

DegradationReason PreparedKb::DegradationLocked() const {
  if (rewrite_degradation_.degraded()) return rewrite_degradation_;
  if (compile_degradation_.degraded()) return compile_degradation_;
  return materialize_degradation_;
}

DegradationReason PreparedKb::degradation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return DegradationLocked();
}

size_t PreparedKb::model_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return model_.size();
}

size_t PreparedKb::datalog_rules() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return DatalogRulesLocked();
}

size_t PreparedKb::DatalogRulesLocked() const {
  return program_ == nullptr ? 0 : program_->theory().size();
}

}  // namespace gerel
