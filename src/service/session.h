// A line-oriented command interpreter over a PreparedKb, backing the
// `gerel serve` subcommand (docs/format.md, "Serve commands").
//
// Grammar, one command per line:
//
//   query <rule>      answer a conjunctive query (e.g. "query
//                     e(X, Y) -> q(X)") against the prepared model
//   assert <facts>    add ground facts (e.g. "assert e(a, b). e(b, c).";
//                     the final period may be omitted)
//   stats             print the serving counters
//   save <path>       persist a crash-safe snapshot of the prepared KB
//   quit | exit       end the session
//
// Blank lines and lines starting with "%" or "#" are skipped. The
// session records whether any query returned sound-but-possibly-
// incomplete answers (saw_incomplete) and whether any command failed
// (saw_error), so callers can map them to exit codes.
#ifndef GEREL_SERVICE_SESSION_H_
#define GEREL_SERVICE_SESSION_H_

#include <string>
#include <string_view>

#include "core/symbol_table.h"
#include "service/prepared_kb.h"

namespace gerel {

class ServiceSession {
 public:
  // `kb` and `symbols` must outlive the session. The session itself is
  // not thread-safe (it parses into the shared symbol table); run one
  // session per input stream.
  ServiceSession(PreparedKb* kb, SymbolTable* symbols)
      : kb_(kb), symbols_(symbols) {}

  struct Response {
    std::string text;  // Complete output for the line ("" for skipped).
    bool error = false;
    bool quit = false;
  };

  // Executes one input line.
  Response HandleLine(std::string_view line);

  // Whether any query so far returned answers that are sound but not
  // certified complete.
  bool saw_incomplete() const { return saw_incomplete_; }
  // Whether any command so far failed to parse or execute.
  bool saw_error() const { return saw_error_; }

 private:
  Response Query(std::string_view text);
  Response Assert(std::string_view text);
  Response Save(std::string_view text);

  PreparedKb* const kb_;
  SymbolTable* const symbols_;
  bool saw_incomplete_ = false;
  bool saw_error_ = false;
};

}  // namespace gerel

#endif  // GEREL_SERVICE_SESSION_H_
