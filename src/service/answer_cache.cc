#include "service/answer_cache.h"

namespace gerel {

bool AnswerCache::Lookup(const std::string& key, Entry* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  return true;
}

void AnswerCache::Insert(const std::string& key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent queries can race to fill the same key; keep the newest.
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t AnswerCache::EvictReading(const std::unordered_set<RelationId>& preds,
                                 size_t* retained) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool affected = false;
    for (RelationId p : it->second.reads) {
      if (preds.count(p) != 0) {
        affected = true;
        break;
      }
    }
    if (affected) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (retained != nullptr) *retained = lru_.size();
  return evicted;
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace gerel
