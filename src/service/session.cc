#include "service/session.h"

#include <cstdio>
#include <vector>

#include "core/parser.h"
#include "core/printer.h"

namespace gerel {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits off the first whitespace-delimited word.
std::string_view FirstWord(std::string_view line, std::string_view* rest) {
  size_t i = 0;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  *rest = Trim(line.substr(i));
  return line.substr(0, i);
}

}  // namespace

ServiceSession::Response ServiceSession::HandleLine(std::string_view line) {
  Response r;
  line = Trim(line);
  if (line.empty() || line.front() == '%' || line.front() == '#') return r;
  std::string_view rest;
  std::string_view cmd = FirstWord(line, &rest);
  if (cmd == "quit" || cmd == "exit") {
    r.quit = true;
    return r;
  }
  if (cmd == "stats") {
    r.text = kb_->stats().ToString();
    return r;
  }
  if (cmd == "query") return Query(rest);
  if (cmd == "assert") return Assert(rest);
  if (cmd == "save") return Save(rest);
  r.error = true;
  saw_error_ = true;
  r.text = "error: unknown command \"" + std::string(cmd) +
           "\" (expected query, assert, stats, save, quit)\n";
  return r;
}

ServiceSession::Response ServiceSession::Query(std::string_view text) {
  Response r;
  Result<Rule> cq = ParseRule(text, symbols_);
  if (!cq.ok()) {
    r.error = true;
    saw_error_ = true;
    r.text = std::string("error: ") + cq.status().message() + "\n";
    return r;
  }
  Result<PreparedQueryResult> answers = kb_->Query(cq.value());
  if (!answers.ok()) {
    r.error = true;
    saw_error_ = true;
    r.text = std::string("error: ") + answers.status().message() + "\n";
    return r;
  }
  const Atom& head = cq.value().head[0];
  for (const std::vector<Term>& tuple : answers.value().answers) {
    Atom a(head.pred, tuple);
    r.text += ToString(a, *symbols_) + "\n";
  }
  char line[96];
  if (answers.value().complete) {
    std::snprintf(line, sizeof(line), "%zu answers (complete)%s\n",
                  answers.value().answers.size(),
                  answers.value().cache_hit ? " [cached]" : "");
  } else {
    saw_incomplete_ = true;
    std::snprintf(line, sizeof(line),
                  "%zu answers (sound, possibly incomplete)%s\n",
                  answers.value().answers.size(),
                  answers.value().cache_hit ? " [cached]" : "");
  }
  r.text += line;
  const DegradationReason& deg = answers.value().degradation;
  if (deg.degraded()) {
    r.text += "degradation: " + deg.ToString() + "\n";
  }
  return r;
}

ServiceSession::Response ServiceSession::Assert(std::string_view text) {
  Response r;
  std::string padded(Trim(text));
  if (!padded.empty() && padded.back() != '.') padded += '.';
  Result<Database> facts = ParseDatabase(padded, symbols_);
  if (!facts.ok()) {
    r.error = true;
    saw_error_ = true;
    r.text = std::string("error: ") + facts.status().message() + "\n";
    return r;
  }
  Result<AssertResult> out = kb_->Assert(facts.value().AtomsVector());
  if (!out.ok()) {
    r.error = true;
    saw_error_ = true;
    r.text = std::string("error: ") + out.status().message() + "\n";
    return r;
  }
  char line[96];
  std::snprintf(line, sizeof(line), "asserted %zu new, derived %zu (%s)\n",
                out.value().new_atoms, out.value().derived_atoms,
                out.value().delta ? "delta" : "rematerialized");
  r.text = line;
  return r;
}

ServiceSession::Response ServiceSession::Save(std::string_view text) {
  Response r;
  std::string path(Trim(text));
  if (path.empty()) {
    r.error = true;
    saw_error_ = true;
    r.text = "error: save requires a path\n";
    return r;
  }
  Status s = kb_->SaveSnapshot(path);
  if (!s.ok()) {
    r.error = true;
    saw_error_ = true;
    r.text = std::string("error: ") + s.message() + "\n";
    return r;
  }
  r.text = "snapshot saved to " + path + "\n";
  return r;
}

}  // namespace gerel
