// Per-knowledge-base serving counters (DESIGN.md §7).
//
// A PreparedKb maintains one ServiceStats block across its lifetime;
// PreparedKb::stats() returns a consistent snapshot. The CLI `serve`
// subcommand dumps the block on the `stats` command and at session end.
#ifndef GEREL_SERVICE_STATS_H_
#define GEREL_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "core/budget.h"

namespace gerel {

struct ServiceStats {
  // Full pipeline compilations: the initial Prepare plus every assert
  // that had to re-run a data-dependent stage (partial grounding with a
  // grown constant domain).
  uint64_t prepares = 0;
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t asserts = 0;
  // Asserts served by the semi-naive delta path (no recompilation, no
  // re-materialization).
  uint64_t delta_asserts = 0;
  // Asserts that rebuilt the materialized model from the EDB.
  uint64_t rematerializations = 0;
  // New EDB atoms accepted by Assert (duplicates excluded).
  uint64_t asserted_atoms = 0;
  // Atoms derived by delta extensions (excludes full re-materializations).
  uint64_t delta_derived_atoms = 0;
  // Retract counters: every Retract is either served by the incremental
  // DRed path (overdelete → rederive → prune) or falls back to a full
  // re-materialization (negation strata, invalid supports, wg-mode
  // domain shrink/null, budget exhaustion mid-retract).
  uint64_t retracts = 0;
  uint64_t retracts_dred = 0;
  uint64_t retracts_rematerialized = 0;
  // EDB atoms removed by Retract.
  uint64_t retracted_atoms = 0;
  // Derived atoms overdeleted by the DRed cascade (beyond the retracted
  // seeds) and atoms the rederivation phase restored.
  uint64_t overdeleted_atoms = 0;
  uint64_t rederived_atoms = 0;
  // Cache-eviction selectivity: entries evicted by dependency-aware
  // write invalidation vs entries that survived those sweeps.
  uint64_t cache_evicted_entries = 0;
  uint64_t cache_retained_entries = 0;
  // Current sizes.
  uint64_t model_atoms = 0;
  uint64_t datalog_rules = 0;
  // Materialization plan chosen by Prepare: "datalog" (compiled
  // translation + least-model evaluation) or "chase" (certificate-driven
  // direct Skolem chase; see PreparedKbOptions::planner). Empty before
  // Prepare. The certificate string names the acyclicity-ladder verdict
  // that licensed (or refused) the chase plan ("weakly-acyclic",
  // "mfa", ...); empty when the planner did not analyze the theory.
  std::string materialization_strategy;
  std::string termination_certificate;
  // Model rebuilds served by the direct chase: the initial chase-mode
  // Prepare plus every chase-mode Assert/Retract rematerialization.
  uint64_t chase_materializations = 0;
  // Diagnostics reported by the Prepare pre-flight analysis (see
  // analyze/analyze.h; 0 when the pre-flight is disabled).
  uint64_t diagnostics = 0;
  // Graceful-degradation counters: prepares/asserts whose pipeline hit a
  // budget or cap (the model is sound but possibly incomplete), and
  // queries answered with complete = false for any reason.
  uint64_t degraded_prepares = 0;
  uint64_t degraded_queries = 0;
  // Snapshot persistence counters (PreparedKb::SaveSnapshot/LoadSnapshot).
  uint64_t snapshot_saves = 0;
  uint64_t snapshot_loads = 0;
  uint64_t snapshot_load_failures = 0;
  // The most recent degradation (stage + limit + round); limit kNone when
  // nothing has degraded.
  DegradationReason last_degradation;
  // Cumulative wall times per phase.
  double prepare_wall_ms = 0.0;
  double query_wall_ms = 0.0;
  double assert_wall_ms = 0.0;
  double retract_wall_ms = 0.0;
  // Prepare-phase breakdown (cumulative across recompiles): classify =
  // normalize + classification + pre-flight analysis; transform = the §5–§7
  // pipeline (expansion, grounding, saturation, Datalog compilation);
  // materialize = model materialization. Makes chase/saturation speedups
  // (e.g. from num_threads) observable from `gerel serve stats`.
  double prepare_classify_wall_ms = 0.0;
  double prepare_transform_wall_ms = 0.0;
  double prepare_materialize_wall_ms = 0.0;

  // Adds `other`'s counters and wall times into this block. Used by the
  // multi-tenant registry to aggregate per-KB stats into a process
  // total: counters sum; last_degradation takes `other`'s when it is
  // degraded (latest contributor wins), otherwise keeps the current one.
  void Accumulate(const ServiceStats& other);

  // Human-readable block, one "name: value" per line.
  std::string ToString() const;
  // Single-object JSON rendering (the bench/CI format).
  std::string ToJson() const;
};

}  // namespace gerel

#endif  // GEREL_SERVICE_STATS_H_
