// Prepared knowledge bases: run the §7 pipeline once, serve many queries
// and incremental fact assertions (DESIGN.md §7).
//
// AnswerKbQuery (transform/pipeline.h) re-runs rewrite → partial
// grounding → saturation → stratification → join-plan compilation on
// every call. For a fixed weakly frontier-guarded theory all of these
// artifacts are query-independent, and most are data-independent too;
// PreparedKb computes them once:
//
//   Prepare:  normalize and classify Σ, rewrite to weakly guarded (Thm
//             2) if needed, then collapse the remaining stages by class:
//               - Datalog Σ: compile Σ directly (no grounding, no
//                 saturation — the least model is the chase);
//               - guarded Σ: dat(Σ) by saturation (Thm 3), which is
//                 database-independent;
//               - weakly guarded Σ: dat(pg(Σ, D)) (§7), which depends
//                 only on D's constant domain.
//             The compiled Datalog program is evaluated over D once and
//             the resulting model kept ("materialized").
//   Query:    evaluate the CQ's body join directly against the
//             materialized model — no recompilation, no re-evaluation.
//             Answers are always sound (every tuple is certain); the
//             `complete` flag certifies they are all of the certain
//             answers (see PreparedQueryResult).
//   Assert:   extend the model incrementally: new facts seed the
//             semi-naive evaluator's delta, so only their consequences
//             are derived. Falls back to re-running the data-dependent
//             stages only when a weakly guarded theory meets constants
//             outside the grounded domain (or the program has negation).
//   Retract:  remove EDB facts incrementally by DRed (delete/re-derive):
//             a per-atom derivation-support log recorded during
//             materialization overdeletes the support cascade in one
//             forward pass, the pruned model is rebuilt, and overdeleted
//             atoms are rederived against it by rerunning their rules —
//             the result is exactly the least model of the surviving
//             EDB. Falls back to an epoch-bump full re-materialization
//             when the program has negation, the support log is invalid
//             (degraded materialization, snapshot load), a weakly
//             guarded theory's constant domain shrinks or the retracted
//             facts carry labeled nulls, or the budget trips mid-retract.
//
// Concurrency: Query takes a shared lock, Assert/Retract an exclusive
// one — any number of reader threads can query while writes serialize.
// All symbol table access happens under the lock, so sessions may keep
// parsing on the thread that asserts.
//
// Writes invalidate the answer cache by predicate dependency, not
// wholesale: CompileProgram records body→head edges of the compiled
// rules, each cached entry is tagged with the predicates its join read,
// and Assert/Retract evict only entries reading the dependency closure
// of the changed predicates (answer_cache.h).
#ifndef GEREL_SERVICE_PREPARED_KB_H_
#define GEREL_SERVICE_PREPARED_KB_H_

#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/analyze.h"
#include "core/budget.h"
#include "core/classify.h"
#include "core/database.h"
#include "core/rule.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "datalog/program.h"
#include "datalog/support.h"
#include "service/answer_cache.h"
#include "service/stats.h"
#include "transform/pipeline.h"

namespace gerel {

struct PreparedKbOptions {
  // Caps for the rewrite/grounding/saturation stages (shared with the
  // one-shot pipeline).
  KbQueryOptions pipeline;
  // Evaluation options; num_threads > 1 parallelizes the materialization
  // and delta rounds over the prepared worker pool.
  DatalogOptions datalog;
  // Maximum number of cached query answer sets; 0 disables the cache.
  size_t answer_cache_capacity = 1024;
  // Run the static analyzers (analyze/analyze.h) over (Σ, D) during
  // Prepare. Diagnostics never fail the prepare — they are advisory
  // (the wfg membership check is what rejects theories) — but their
  // count lands in ServiceStats::diagnostics and the full list is kept
  // on the PreparedKb for callers that want to surface it.
  bool preflight = true;
  // Resource budget applied to Prepare, to every Assert, and (by
  // default) to every Query. Exhaustion never fails the operation: the
  // pipeline degrades to a sound-but-possibly-incomplete model and the
  // reason is recorded (degradation(), ServiceStats). Unlimited by
  // default.
  BudgetLimits budget;
  // Certificate-driven materialization planning: when the termination
  // analyzer (analyze/termination.h) certifies that the Skolem chase of
  // the theory terminates on every database, Prepare skips the rewrite/
  // grounding/saturation translation stack entirely and materializes a
  // *universal* model by chasing the EDB directly
  // (Mode::kChaseMaterialized). Queries against a universal model are
  // always complete — even through null witnesses the dat(·) route
  // cannot see. Existential-free theories and programs with negation
  // keep the Datalog route; an uncertified theory falls back to the
  // translations.
  bool planner = true;
  // Caps for the planner's certificate analysis and for the chase-mode
  // materializations (generous: the certificate bounds the chase, the
  // caps only stop pathologies; an unsaturated prepare-time chase falls
  // back to the translation pipeline).
  TerminationOptions termination;
  size_t chase_max_steps = 1 << 20;
  size_t chase_max_atoms = 1 << 21;
};

struct PreparedQueryResult {
  std::set<std::vector<Term>> answers;
  // Answers are always sound. They are certified complete when no
  // prepare stage hit a cap and the query cannot have null witnesses:
  // either the prepared theory is existential-free, or no body relation
  // of the CQ has an affected position (ap(Σ), Def 2 — only affected
  // positions ever hold chase nulls). Otherwise the certain answers may
  // strictly include these (the one-shot pipeline saturates the query
  // rule into the theory and can see null witnesses; see DESIGN.md §7).
  bool complete = true;
  bool cache_hit = false;
  // Why the result is possibly incomplete: the first prepare-stage
  // degradation, or a per-query budget trip. limit kNone when complete.
  DegradationReason degradation;
};

struct AssertResult {
  // EDB atoms that were actually new.
  size_t new_atoms = 0;
  // Derived consequences added to the materialized model (delta path
  // only; 0 after a re-materialization).
  size_t derived_atoms = 0;
  // False when the assert had to rebuild the model from the EDB.
  bool delta = true;
};

struct RetractResult {
  // Distinct EDB atoms removed.
  size_t removed_atoms = 0;
  // Derived atoms the DRed cascade overdeleted beyond the retracted
  // seeds (0 on the re-materialization fallback).
  size_t overdeleted_atoms = 0;
  // Overdeleted atoms the rederivation phase proved still entailed and
  // restored (0 on the fallback).
  size_t rederived_atoms = 0;
  // False when the retract rebuilt the model from the surviving EDB
  // instead of running DRed. The server maps this to an epoch bump (a
  // replica cannot apply the change as a delta).
  bool delta = true;
};

class PreparedKb {
 public:
  // Which stages the §7 pipeline collapsed to for this theory.
  enum class Mode {
    kDatalog,            // Direct evaluation; fully incremental.
    kGuarded,            // dat(Σ) once; fully incremental.
    kWeaklyGuarded,      // dat(pg(Σ, D)); re-grounds on new constants.
    kChaseMaterialized,  // Certified terminating: direct Skolem chase,
                         // no compiled program; writes re-chase.
  };

  // Runs the prepare phase over `theory` (must be weakly
  // frontier-guarded) and `db`. `symbols` must outlive the PreparedKb
  // and must not be mutated externally while Query/Assert run.
  static Result<std::unique_ptr<PreparedKb>> Prepare(
      const Theory& theory, const Database& db, SymbolTable* symbols,
      const PreparedKbOptions& options = PreparedKbOptions());

  // Answers the conjunctive query `cq` (a Datalog rule with a single
  // head atom and a positive, non-empty body) against the materialized
  // model. Thread-safe: takes a shared lock. Governed by a per-query
  // budget armed from PreparedKbOptions::budget.
  Result<PreparedQueryResult> Query(const Rule& cq) const;
  // As above under an explicit per-query budget (may be null). The
  // budget only bounds this query's join enumeration; a trip yields the
  // sound partial answer set with complete = false. Budget-truncated
  // answers are never cached.
  Result<PreparedQueryResult> Query(const Rule& cq,
                                    ExecutionBudget* budget) const;

  // Adds ground facts to the knowledge base and re-derives their
  // consequences. Thread-safe: takes an exclusive lock and evicts the
  // cached answers that depend on the changed predicates.
  Result<AssertResult> Assert(const std::vector<Atom>& facts);

  // Removes ground EDB facts and incrementally deletes the derived
  // consequences that lose their last recorded support (DRed), falling
  // back to full re-materialization when the incremental path cannot be
  // trusted (see the class comment). Every fact must be a current EDB
  // atom: an unknown or derived-only fact is a clean no-op error (no
  // state changes). A retracted fact may survive in the model when it is
  // still entailed by the remaining facts. Thread-safe: exclusive lock.
  Result<RetractResult> Retract(const std::vector<Atom>& facts);

  // Consistent snapshot of the serving counters.
  ServiceStats stats() const;

  // --- Crash-safe persistence (implemented in snapshot.cc) ---
  //
  // Binary format: magic + version + payload size + payload + FNV-1a
  // checksum, where the payload serializes the symbol table, theories,
  // mode, EDB, materialized model, and degradation certificate. Written
  // to `path` via temp file + atomic rename, so a crash mid-save leaves
  // any previous snapshot intact. The active fault plan (GEREL_FAULT /
  // SetFaultPlanForTest) can truncate or bit-flip the written image for
  // recovery drills.
  Status SaveSnapshot(const std::string& path) const;
  // Loads a snapshot into a PreparedKb over `symbols` (which must be
  // freshly constructed — names are re-interned at their original ids).
  // Returns an error on truncation, corruption, version/magic skew, or
  // fingerprint mismatch; callers recover by falling back to a fresh
  // Prepare (re-materialization).
  static Result<std::unique_ptr<PreparedKb>> LoadSnapshot(
      const std::string& path, SymbolTable* symbols,
      const PreparedKbOptions& options = PreparedKbOptions(),
      uint64_t expected_fingerprint = 0);
  // Caller-provided hash of the source program (0 = unchecked); stored
  // in snapshots and verified by LoadSnapshot so a snapshot is never
  // applied to a different theory's program file.
  void set_snapshot_fingerprint(uint64_t fp) { snapshot_fingerprint_ = fp; }
  uint64_t snapshot_fingerprint() const { return snapshot_fingerprint_; }

  // The first degradation recorded by the prepare/assert pipeline
  // stages (limit kNone when none).
  DegradationReason degradation() const;

  Mode mode() const { return mode_; }
  // Pre-flight analysis of the input (Σ, D); empty when
  // PreparedKbOptions::preflight was false. Immutable after Prepare.
  const AnalysisResult& preflight() const { return preflight_; }
  // The termination certificate the planner computed over the normalized
  // theory (kind kExistentialFree when the planner never ran — it only
  // analyzes negation-free theories with existentials). Immutable after
  // Prepare; not persisted in snapshots.
  const TerminationCertificate& certificate() const { return certificate_; }
  // Whether every prepare stage ran to completion (no cap hit); query
  // results degrade to complete=false otherwise.
  bool prepare_complete() const;
  size_t model_size() const;
  size_t datalog_rules() const;
  // Snapshot copies of the materialized model / base facts, for tests
  // and the differential harness (shared lock; order is insertion order).
  std::vector<Atom> ModelAtoms() const;
  std::vector<Atom> EdbAtoms() const;

 private:
  PreparedKb(SymbolTable* symbols, const PreparedKbOptions& options);

  // Rebuilds the data-dependent stages (grounding + saturation +
  // program compilation) from the current EDB. Exclusive lock held.
  Status CompileProgram();
  // Rebuilds the materialized model from the EDB. Exclusive lock held.
  Status MaterializeModel();
  // Records the compiled program's body→head predicate edges for
  // dependency-aware cache invalidation (also called by LoadSnapshot).
  void BuildDependencyIndex();
  // All predicates transitively derivable from `preds` (including
  // `preds` themselves). Exclusive lock held.
  std::unordered_set<RelationId> DependencyClosure(
      std::unordered_set<RelationId> preds) const;
  // Evicts cached entries reading the closure of `written` (plus acdom
  // when the active domain changed) and updates the selectivity
  // counters. Exclusive lock held; takes stats_mu_ internally.
  void EvictCacheForWrite(std::unordered_set<RelationId> written,
                          bool domain_changed);
  // The DRed core: overdelete/prune/rederive against `new_edb` into
  // *new_model / *new_log. Returns false when the budget tripped
  // mid-retract; the caller falls back to re-materialization. Exclusive
  // lock held; model_/supports_ are read, not written.
  bool RetractDRed(const std::unordered_set<Atom, AtomHash>& targets,
                   const std::vector<Term>& vanished, const Database& new_edb,
                   Database* new_model, SupportLog* new_log,
                   size_t* overdeleted, size_t* rederived) const;
  // Completeness certificate for a query: the materialized model decides
  // the certain answers — either it is a universal model (chase mode) or
  // no body relation of `cq` can hold a labeled null in the chase.
  bool QueryCannotHaveNullWitnesses(const Rule& cq) const;
  // Compiled-program rule count; 0 in chase mode (no program). Caller
  // holds mu_.
  size_t DatalogRulesLocked() const;
  // First recorded stage degradation (rewrite, then compile, then
  // materialize). Caller holds mu_.
  DegradationReason DegradationLocked() const;

  SymbolTable* const symbols_;
  const PreparedKbOptions options_;

  // Query-independent artifacts, immutable after Prepare.
  Theory normal_;          // Normalize(Σ).
  Theory weakly_guarded_;  // rew(normal_) (Thm 2), or normal_ itself.
  PositionSet affected_;   // ap(normal_), for the completeness check.
  Mode mode_ = Mode::kDatalog;
  AnalysisResult preflight_;
  TerminationCertificate certificate_;
  bool planner_analyzed_ = false;
  bool rewrite_complete_ = true;
  bool theory_has_existentials_ = false;
  RelationId acdom_ = 0;
  DegradationReason rewrite_degradation_;
  uint64_t snapshot_fingerprint_ = 0;

  // Budget shared by Prepare/Assert pipelines; re-armed per operation
  // under the exclusive lock. Owned here because the compiled
  // DatalogProgram's options hold a pointer into it for the lifetime of
  // the program. Queries use local budgets instead (shared-lock
  // concurrency).
  std::unique_ptr<ExecutionBudget> budget_;

  // Everything below is guarded by mu_ (shared for Query, exclusive for
  // Assert and the prepare phase).
  mutable std::shared_mutex mu_;
  Database edb_;    // Base facts: the initial database plus all asserts.
  Database model_;  // edb_ plus every derived consequence (and acdom).
  std::unique_ptr<DatalogProgram> program_;
  // One derivation support per model atom, recorded by the program
  // during Materialize/ExtendWithDelta (the program's options point at
  // this log). Valid only when the last full pass completed and the
  // program is negation-free; an invalid log routes Retract to the
  // re-materialization fallback, which rebuilds it (self-healing — the
  // snapshot format does not persist supports).
  SupportLog supports_;
  bool supports_valid_ = false;
  // Direct body→head predicate edges of the compiled program, for the
  // cache-invalidation closure.
  std::unordered_map<RelationId, std::vector<RelationId>> dependents_;
  bool compile_complete_ = true;
  bool materialize_complete_ = true;
  DegradationReason compile_degradation_;
  DegradationReason materialize_degradation_;
  // kWeaklyGuarded only: constants the current grounding covers.
  std::unordered_set<uint32_t> grounded_constants_;

  mutable AnswerCache cache_;

  mutable std::mutex stats_mu_;
  mutable ServiceStats stats_;
};

}  // namespace gerel

#endif  // GEREL_SERVICE_PREPARED_KB_H_
