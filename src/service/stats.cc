#include "service/stats.h"

#include <cstdarg>
#include <cstdio>

namespace gerel {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

void ServiceStats::Accumulate(const ServiceStats& other) {
  prepares += other.prepares;
  queries += other.queries;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  asserts += other.asserts;
  delta_asserts += other.delta_asserts;
  rematerializations += other.rematerializations;
  asserted_atoms += other.asserted_atoms;
  delta_derived_atoms += other.delta_derived_atoms;
  retracts += other.retracts;
  retracts_dred += other.retracts_dred;
  retracts_rematerialized += other.retracts_rematerialized;
  retracted_atoms += other.retracted_atoms;
  overdeleted_atoms += other.overdeleted_atoms;
  rederived_atoms += other.rederived_atoms;
  cache_evicted_entries += other.cache_evicted_entries;
  cache_retained_entries += other.cache_retained_entries;
  model_atoms += other.model_atoms;
  datalog_rules += other.datalog_rules;
  chase_materializations += other.chase_materializations;
  // Like last_degradation: the latest contributor with a value wins
  // (strategy strings are per-KB facts, not summable counters).
  if (!other.materialization_strategy.empty()) {
    materialization_strategy = other.materialization_strategy;
  }
  if (!other.termination_certificate.empty()) {
    termination_certificate = other.termination_certificate;
  }
  diagnostics += other.diagnostics;
  degraded_prepares += other.degraded_prepares;
  degraded_queries += other.degraded_queries;
  snapshot_saves += other.snapshot_saves;
  snapshot_loads += other.snapshot_loads;
  snapshot_load_failures += other.snapshot_load_failures;
  if (other.last_degradation.degraded()) {
    last_degradation = other.last_degradation;
  }
  prepare_wall_ms += other.prepare_wall_ms;
  query_wall_ms += other.query_wall_ms;
  assert_wall_ms += other.assert_wall_ms;
  retract_wall_ms += other.retract_wall_ms;
  prepare_classify_wall_ms += other.prepare_classify_wall_ms;
  prepare_transform_wall_ms += other.prepare_transform_wall_ms;
  prepare_materialize_wall_ms += other.prepare_materialize_wall_ms;
}

std::string ServiceStats::ToString() const {
  std::string out;
  Append(&out, "prepares:            %llu\n",
         static_cast<unsigned long long>(prepares));
  Append(&out, "queries:             %llu\n",
         static_cast<unsigned long long>(queries));
  Append(&out, "cache hits:          %llu\n",
         static_cast<unsigned long long>(cache_hits));
  Append(&out, "cache misses:        %llu\n",
         static_cast<unsigned long long>(cache_misses));
  Append(&out, "asserts:             %llu\n",
         static_cast<unsigned long long>(asserts));
  Append(&out, "delta asserts:       %llu\n",
         static_cast<unsigned long long>(delta_asserts));
  Append(&out, "rematerializations:  %llu\n",
         static_cast<unsigned long long>(rematerializations));
  Append(&out, "asserted atoms:      %llu\n",
         static_cast<unsigned long long>(asserted_atoms));
  Append(&out, "delta derived atoms: %llu\n",
         static_cast<unsigned long long>(delta_derived_atoms));
  Append(&out, "retracts:            %llu\n",
         static_cast<unsigned long long>(retracts));
  Append(&out, "retracts_dred:       %llu\n",
         static_cast<unsigned long long>(retracts_dred));
  Append(&out, "retracts_rematerialized: %llu\n",
         static_cast<unsigned long long>(retracts_rematerialized));
  Append(&out, "retracted atoms:     %llu\n",
         static_cast<unsigned long long>(retracted_atoms));
  Append(&out, "overdeleted atoms:   %llu\n",
         static_cast<unsigned long long>(overdeleted_atoms));
  Append(&out, "rederived atoms:     %llu\n",
         static_cast<unsigned long long>(rederived_atoms));
  Append(&out, "cache evicted:       %llu\n",
         static_cast<unsigned long long>(cache_evicted_entries));
  Append(&out, "cache retained:      %llu\n",
         static_cast<unsigned long long>(cache_retained_entries));
  Append(&out, "model atoms:         %llu\n",
         static_cast<unsigned long long>(model_atoms));
  Append(&out, "datalog rules:       %llu\n",
         static_cast<unsigned long long>(datalog_rules));
  Append(&out, "strategy:            %s\n",
         materialization_strategy.empty() ? "-"
                                          : materialization_strategy.c_str());
  Append(&out, "termination cert:    %s\n",
         termination_certificate.empty() ? "-"
                                         : termination_certificate.c_str());
  Append(&out, "chase materializations: %llu\n",
         static_cast<unsigned long long>(chase_materializations));
  Append(&out, "diagnostics:         %llu\n",
         static_cast<unsigned long long>(diagnostics));
  Append(&out, "degraded prepares:   %llu\n",
         static_cast<unsigned long long>(degraded_prepares));
  Append(&out, "degraded queries:    %llu\n",
         static_cast<unsigned long long>(degraded_queries));
  Append(&out, "snapshot saves:      %llu\n",
         static_cast<unsigned long long>(snapshot_saves));
  Append(&out, "snapshot loads:      %llu\n",
         static_cast<unsigned long long>(snapshot_loads));
  Append(&out, "snapshot load fails: %llu\n",
         static_cast<unsigned long long>(snapshot_load_failures));
  Append(&out, "last degradation:    %s\n",
         last_degradation.ToString().c_str());
  Append(&out, "prepare wall ms:     %.3f\n", prepare_wall_ms);
  Append(&out, "  classify ms:       %.3f\n", prepare_classify_wall_ms);
  Append(&out, "  transform ms:      %.3f\n", prepare_transform_wall_ms);
  Append(&out, "  materialize ms:    %.3f\n", prepare_materialize_wall_ms);
  Append(&out, "query wall ms:       %.3f\n", query_wall_ms);
  Append(&out, "assert wall ms:      %.3f\n", assert_wall_ms);
  Append(&out, "retract wall ms:     %.3f\n", retract_wall_ms);
  return out;
}

std::string ServiceStats::ToJson() const {
  std::string out = "{";
  Append(&out, "\"prepares\": %llu, ",
         static_cast<unsigned long long>(prepares));
  Append(&out, "\"queries\": %llu, ",
         static_cast<unsigned long long>(queries));
  Append(&out, "\"cache_hits\": %llu, ",
         static_cast<unsigned long long>(cache_hits));
  Append(&out, "\"cache_misses\": %llu, ",
         static_cast<unsigned long long>(cache_misses));
  Append(&out, "\"asserts\": %llu, ",
         static_cast<unsigned long long>(asserts));
  Append(&out, "\"delta_asserts\": %llu, ",
         static_cast<unsigned long long>(delta_asserts));
  Append(&out, "\"rematerializations\": %llu, ",
         static_cast<unsigned long long>(rematerializations));
  Append(&out, "\"asserted_atoms\": %llu, ",
         static_cast<unsigned long long>(asserted_atoms));
  Append(&out, "\"delta_derived_atoms\": %llu, ",
         static_cast<unsigned long long>(delta_derived_atoms));
  Append(&out, "\"retracts\": %llu, ",
         static_cast<unsigned long long>(retracts));
  Append(&out, "\"retracts_dred\": %llu, ",
         static_cast<unsigned long long>(retracts_dred));
  Append(&out, "\"retracts_rematerialized\": %llu, ",
         static_cast<unsigned long long>(retracts_rematerialized));
  Append(&out, "\"retracted_atoms\": %llu, ",
         static_cast<unsigned long long>(retracted_atoms));
  Append(&out, "\"overdeleted_atoms\": %llu, ",
         static_cast<unsigned long long>(overdeleted_atoms));
  Append(&out, "\"rederived_atoms\": %llu, ",
         static_cast<unsigned long long>(rederived_atoms));
  Append(&out, "\"cache_evicted_entries\": %llu, ",
         static_cast<unsigned long long>(cache_evicted_entries));
  Append(&out, "\"cache_retained_entries\": %llu, ",
         static_cast<unsigned long long>(cache_retained_entries));
  Append(&out, "\"model_atoms\": %llu, ",
         static_cast<unsigned long long>(model_atoms));
  Append(&out, "\"datalog_rules\": %llu, ",
         static_cast<unsigned long long>(datalog_rules));
  Append(&out, "\"materialization_strategy\": \"%s\", ",
         materialization_strategy.c_str());
  Append(&out, "\"termination_certificate\": \"%s\", ",
         termination_certificate.c_str());
  Append(&out, "\"chase_materializations\": %llu, ",
         static_cast<unsigned long long>(chase_materializations));
  Append(&out, "\"diagnostics\": %llu, ",
         static_cast<unsigned long long>(diagnostics));
  Append(&out, "\"degraded_prepares\": %llu, ",
         static_cast<unsigned long long>(degraded_prepares));
  Append(&out, "\"degraded_queries\": %llu, ",
         static_cast<unsigned long long>(degraded_queries));
  Append(&out, "\"snapshot_saves\": %llu, ",
         static_cast<unsigned long long>(snapshot_saves));
  Append(&out, "\"snapshot_loads\": %llu, ",
         static_cast<unsigned long long>(snapshot_loads));
  Append(&out, "\"snapshot_load_failures\": %llu, ",
         static_cast<unsigned long long>(snapshot_load_failures));
  out += "\"degradation\": " + last_degradation.ToJson() + ", ";
  Append(&out, "\"prepare_wall_ms\": %.6f, ", prepare_wall_ms);
  Append(&out, "\"prepare_classify_wall_ms\": %.6f, ", prepare_classify_wall_ms);
  Append(&out, "\"prepare_transform_wall_ms\": %.6f, ",
         prepare_transform_wall_ms);
  Append(&out, "\"prepare_materialize_wall_ms\": %.6f, ",
         prepare_materialize_wall_ms);
  Append(&out, "\"query_wall_ms\": %.6f, ", query_wall_ms);
  Append(&out, "\"assert_wall_ms\": %.6f, ", assert_wall_ms);
  Append(&out, "\"retract_wall_ms\": %.6f}", retract_wall_ms);
  return out;
}

}  // namespace gerel
