// An LRU cache of answer sets keyed by the canonicalized conjunctive
// query (DESIGN.md §7).
//
// The cache is internally locked so that many PreparedKb::Query calls —
// which run concurrently under the KB's shared lock — can probe and fill
// it; Assert clears it under the KB's exclusive lock (any cached answer
// set may be stale once the model grows).
#ifndef GEREL_SERVICE_ANSWER_CACHE_H_
#define GEREL_SERVICE_ANSWER_CACHE_H_

#include <list>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/term.h"

namespace gerel {

class AnswerCache {
 public:
  struct Entry {
    std::set<std::vector<Term>> answers;
    bool complete = true;
  };

  // `capacity` = maximum number of cached queries; 0 disables the cache
  // (Lookup always misses, Insert is a no-op).
  explicit AnswerCache(size_t capacity) : capacity_(capacity) {}

  // On hit, copies the entry into *out, promotes the key to
  // most-recently-used, and returns true.
  bool Lookup(const std::string& key, Entry* out);

  // Inserts (or refreshes) the entry, evicting the least-recently-used
  // key when over capacity.
  void Insert(const std::string& key, Entry entry);

  // Drops every entry (model changed).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::string, Entry>>;

  mutable std::mutex mu_;
  const size_t capacity_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
};

}  // namespace gerel

#endif  // GEREL_SERVICE_ANSWER_CACHE_H_
