// An LRU cache of answer sets keyed by the canonicalized conjunctive
// query (DESIGN.md §7).
//
// The cache is internally locked so that many PreparedKb::Query calls —
// which run concurrently under the KB's shared lock — can probe and fill
// it. Invalidation is dependency-aware: every entry carries the set of
// predicates its compiled join read (body relations plus any appended
// acdom guards), and a write (Assert/Retract) evicts, via EvictReading,
// only the entries whose read-set intersects the dependency closure of
// the changed predicates — cached answers over unrelated predicates
// survive the write. Clear() remains for program recompilation, where
// the rule set itself (and hence every read-set's meaning) changes.
#ifndef GEREL_SERVICE_ANSWER_CACHE_H_
#define GEREL_SERVICE_ANSWER_CACHE_H_

#include <list>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {

class AnswerCache {
 public:
  struct Entry {
    std::set<std::vector<Term>> answers;
    bool complete = true;
    // Predicates the answering join read, sorted and deduplicated by the
    // caller; the invalidation key for EvictReading.
    std::vector<RelationId> reads;
  };

  // `capacity` = maximum number of cached queries; 0 disables the cache
  // (Lookup always misses, Insert is a no-op).
  explicit AnswerCache(size_t capacity) : capacity_(capacity) {}

  // On hit, copies the entry into *out, promotes the key to
  // most-recently-used, and returns true.
  bool Lookup(const std::string& key, Entry* out);

  // Inserts (or refreshes) the entry, evicting the least-recently-used
  // key when over capacity.
  void Insert(const std::string& key, Entry entry);

  // Drops every entry whose read-set intersects `preds` (the dependency
  // closure of a write). Returns the number of entries evicted; when
  // `retained` is non-null it receives the number of entries that
  // survived the sweep (the selectivity counters in ServiceStats).
  size_t EvictReading(const std::unordered_set<RelationId>& preds,
                      size_t* retained = nullptr);

  // Drops every entry (program recompiled).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::string, Entry>>;

  mutable std::mutex mu_;
  const size_t capacity_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
};

}  // namespace gerel

#endif  // GEREL_SERVICE_ANSWER_CACHE_H_
