// Terms of the existential-rule data model (paper §2).
//
// A term is a constant (from ∆c), a labeled null (from ∆n), or a variable
// (from ∆v). Terms are 32-bit value types: two tag bits plus a 30-bit id
// resolved against a SymbolTable (constants, variables) or a null counter
// (labeled nulls).
#ifndef GEREL_CORE_TERM_H_
#define GEREL_CORE_TERM_H_

#include <cstdint>
#include <functional>

#include "core/check.h"

namespace gerel {

enum class TermKind : uint32_t {
  kConstant = 0,
  kVariable = 1,
  kNull = 2,
};

// A constant, variable, or labeled null. Cheap to copy and hash.
class Term {
 public:
  // Default-constructed terms are constant #0; prefer the factories.
  Term() : bits_(0) {}

  static Term Constant(uint32_t id) { return Term(TermKind::kConstant, id); }
  static Term Variable(uint32_t id) { return Term(TermKind::kVariable, id); }
  static Term Null(uint32_t id) { return Term(TermKind::kNull, id); }

  TermKind kind() const { return static_cast<TermKind>(bits_ >> kIdBits); }
  uint32_t id() const { return bits_ & kIdMask; }

  bool IsConstant() const { return kind() == TermKind::kConstant; }
  bool IsVariable() const { return kind() == TermKind::kVariable; }
  bool IsNull() const { return kind() == TermKind::kNull; }
  // Constants and nulls may appear in databases; variables may not.
  bool IsGround() const { return !IsVariable(); }

  friend bool operator==(Term a, Term b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Term a, Term b) { return a.bits_ != b.bits_; }
  friend bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

  // Raw encoding, used for hashing and dense keys.
  uint32_t bits() const { return bits_; }

 private:
  static constexpr uint32_t kIdBits = 30;
  static constexpr uint32_t kIdMask = (1u << kIdBits) - 1;

  Term(TermKind kind, uint32_t id)
      : bits_((static_cast<uint32_t>(kind) << kIdBits) | id) {
    GEREL_CHECK(id <= kIdMask);
  }

  uint32_t bits_;
};

struct TermHash {
  size_t operator()(Term t) const {
    // Multiplicative hash; term bit patterns are small and dense.
    return static_cast<size_t>(t.bits()) * 0x9E3779B97F4A7C15ull >> 16;
  }
};

}  // namespace gerel

#endif  // GEREL_CORE_TERM_H_
