// Resource governance for potentially non-terminating computations.
//
// The chase over weakly-guarded theories need not terminate, and even
// terminating runs can exceed any practical time or space envelope. An
// ExecutionBudget bounds a governed computation with a wall-clock
// deadline, an atom/term-count ceiling, and a cooperative cancel flag.
// Every governed round loop (chase rounds, saturation frontiers, the
// rewriting/grounding closures, Datalog evaluation passes) calls
// CheckRound() at round boundaries; tight inner loops call the amortized
// CheckPoint(); parallel worker lanes poll the lock-free ExhaustedFast()
// between work units so they stop promptly while the deterministic merge
// still applies only completed units.
//
// Exhaustion is not an error: the governed engines stop cleanly, keep
// everything derived so far (which is sound — every derived atom is a
// certain consequence), and report a structured DegradationReason naming
// the stage and the limit that tripped. The service layer surfaces the
// reason through ServiceStats and the exit-3 "possibly incomplete" path.
#ifndef GEREL_CORE_BUDGET_H_
#define GEREL_CORE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/fault.h"

namespace gerel {

// Which limit stopped a governed computation early.
enum class BudgetLimit : uint8_t {
  kNone = 0,    // Ran to completion.
  kDeadline,    // Wall-clock deadline passed.
  kAtoms,       // Atom/term-count ceiling reached.
  kCancelled,   // Cooperative cancellation requested.
  kSteps,       // Engine-local step cap (e.g. ChaseOptions::max_steps).
  kRules,       // Engine-local rule cap (saturation/rewriting closures).
  kFault,       // Forced by an injected FaultPlan.
};

const char* BudgetLimitName(BudgetLimit limit);

// Structured record of why (and where) a computation degraded. A default
// constructed reason means "did not degrade".
struct DegradationReason {
  GovernedStage stage = GovernedStage::kNone;
  BudgetLimit limit = BudgetLimit::kNone;
  // 1-based round/pass index at which the limit tripped; 0 when the
  // trip was not at a round boundary.
  uint64_t round = 0;

  bool degraded() const { return limit != BudgetLimit::kNone; }
  // "chase: deadline at round 7" / "none".
  std::string ToString() const;
  // {"stage":"chase","limit":"deadline","round":7} / null.
  std::string ToJson() const;
};

// User-facing knobs, kept separate from ExecutionBudget so callers can
// store them in options structs and arm a budget per operation.
struct BudgetLimits {
  // Wall-clock budget in milliseconds; <= 0 means no deadline.
  double timeout_ms = 0;
  // Ceiling on stored atoms (as reported by the governed stage); 0 means
  // no ceiling.
  uint64_t max_atoms = 0;

  bool unlimited() const { return timeout_ms <= 0 && max_atoms == 0; }
};

// A budget for one governed operation. Thread-compatible: one thread
// arms it, any number of worker threads poll ExhaustedFast()/CheckPoint()
// concurrently, and any thread may Cancel().
class ExecutionBudget {
 public:
  // An unlimited budget (still honors Cancel() and fault plans).
  ExecutionBudget() = default;
  explicit ExecutionBudget(const BudgetLimits& limits,
                           const FaultPlan* fault = nullptr) {
    Arm(limits, fault);
  }

  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  // Re-arms the budget for a new operation: the deadline restarts from
  // now and any recorded exhaustion is cleared. Must not race with
  // in-flight governed work.
  void Arm(const BudgetLimits& limits, const FaultPlan* fault = nullptr);

  // Requests cooperative cancellation; governed loops stop at the next
  // check with BudgetLimit::kCancelled.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  // Lock-free exhaustion poll for worker lanes and per-tuple callbacks:
  // two relaxed loads, no clock sample. Becomes true only after a
  // CheckRound/CheckPoint on some thread observed a tripped limit (or
  // after Cancel()).
  bool ExhaustedFast() const {
    return exhausted_.load(std::memory_order_relaxed) ||
           cancel_.load(std::memory_order_relaxed);
  }

  // Round-boundary check: samples the clock, applies the atom ceiling to
  // `atoms`, and consults the fault plan. `round` is 1-based. Returns
  // true when the stage may continue.
  bool CheckRound(GovernedStage stage, uint64_t round, uint64_t atoms = 0);

  // Amortized inner-loop check: counts calls and samples the clock once
  // every 1024. Returns true when work may continue.
  bool CheckPoint(GovernedStage stage);

  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed) ||
           cancel_.load(std::memory_order_relaxed);
  }
  // The first limit that tripped (sticky until re-Arm). A pure Cancel()
  // with no subsequent check reports kCancelled with stage kNone.
  DegradationReason reason() const;

  const FaultPlan* fault_plan() const { return fault_; }
  uint64_t max_atoms() const { return max_atoms_; }
  bool has_deadline() const { return has_deadline_; }

 private:
  // Records the first trip; later trips are ignored.
  void Trip(GovernedStage stage, BudgetLimit limit, uint64_t round);
  bool DeadlinePassed() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t max_atoms_ = 0;
  const FaultPlan* fault_ = nullptr;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> exhausted_{false};
  std::atomic<uint32_t> ticks_{0};

  mutable std::mutex mu_;  // Guards reason_ (first-trip-wins).
  DegradationReason reason_;
};

}  // namespace gerel

#endif  // GEREL_CORE_BUDGET_H_
