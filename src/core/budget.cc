#include "core/budget.h"

#include <cstdio>

namespace gerel {

const char* BudgetLimitName(BudgetLimit limit) {
  switch (limit) {
    case BudgetLimit::kNone:
      return "none";
    case BudgetLimit::kDeadline:
      return "deadline";
    case BudgetLimit::kAtoms:
      return "atoms";
    case BudgetLimit::kCancelled:
      return "cancelled";
    case BudgetLimit::kSteps:
      return "steps";
    case BudgetLimit::kRules:
      return "rules";
    case BudgetLimit::kFault:
      return "fault";
  }
  return "unknown";
}

std::string DegradationReason::ToString() const {
  if (!degraded()) return "none";
  std::string out = GovernedStageName(stage);
  out += ": ";
  out += BudgetLimitName(limit);
  if (round != 0) {
    out += " at round ";
    out += std::to_string(round);
  }
  return out;
}

std::string DegradationReason::ToJson() const {
  if (!degraded()) return "null";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"stage\":\"%s\",\"limit\":\"%s\",\"round\":%llu}",
                GovernedStageName(stage), BudgetLimitName(limit),
                static_cast<unsigned long long>(round));
  return buf;
}

void ExecutionBudget::Arm(const BudgetLimits& limits, const FaultPlan* fault) {
  has_deadline_ = limits.timeout_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        limits.timeout_ms));
  }
  max_atoms_ = limits.max_atoms;
  fault_ = fault;
  cancel_.store(false, std::memory_order_relaxed);
  exhausted_.store(false, std::memory_order_relaxed);
  ticks_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  reason_ = DegradationReason{};
}

void ExecutionBudget::Trip(GovernedStage stage, BudgetLimit limit,
                           uint64_t round) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!reason_.degraded()) {
      reason_.stage = stage;
      reason_.limit = limit;
      reason_.round = round;
    }
  }
  exhausted_.store(true, std::memory_order_relaxed);
}

bool ExecutionBudget::CheckRound(GovernedStage stage, uint64_t round,
                                 uint64_t atoms) {
  if (ExhaustedFast()) {
    if (cancel_.load(std::memory_order_relaxed)) {
      Trip(stage, BudgetLimit::kCancelled, round);
    }
    return false;
  }
  if (fault_ != nullptr && fault_->exhaust_round != 0 &&
      fault_->exhaust_stage == stage && round >= fault_->exhaust_round) {
    Trip(stage, BudgetLimit::kFault, round);
    return false;
  }
  if (max_atoms_ != 0 && atoms > max_atoms_) {
    Trip(stage, BudgetLimit::kAtoms, round);
    return false;
  }
  if (DeadlinePassed()) {
    Trip(stage, BudgetLimit::kDeadline, round);
    return false;
  }
  return true;
}

bool ExecutionBudget::CheckPoint(GovernedStage stage) {
  if (ExhaustedFast()) {
    if (cancel_.load(std::memory_order_relaxed)) {
      Trip(stage, BudgetLimit::kCancelled, 0);
    }
    return false;
  }
  // Sample the clock only once every 1024 calls: a steady_clock read is
  // tens of nanoseconds, which would dominate tight trigger loops.
  if ((ticks_.fetch_add(1, std::memory_order_relaxed) & 1023u) != 0) {
    return true;
  }
  if (DeadlinePassed()) {
    Trip(stage, BudgetLimit::kDeadline, 0);
    return false;
  }
  return true;
}

DegradationReason ExecutionBudget::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (reason_.degraded()) return reason_;
  if (cancel_.load(std::memory_order_relaxed)) {
    DegradationReason r;
    r.limit = BudgetLimit::kCancelled;
    return r;
  }
  return reason_;
}

}  // namespace gerel
