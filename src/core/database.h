// Databases: sets of atoms over constants and labeled nulls (paper §2),
// with per-relation and per-(relation, position, term) indexes used by the
// homomorphism matcher, the chase, and the Datalog engine.
//
// Storage layout (concurrent fact store): atoms live in fixed-size
// segments behind a slot directory, so a published atom never moves and
// readers need no lock. The dedup set and both postings indexes are
// sharded; shards let (a) the deterministic parallel index build of the
// piece-parallel chase assign each shard to one worker, and (b) the
// finely-locked concurrent append path stripe its dedup locking.
//
// Threading contract — a Database is in exactly one mode at a time:
//  * Owner mode (default): all mutation through one thread via Insert /
//    InsertDeferIndex; no locks are taken. Concurrent *readers* are safe
//    while the owner is idle (the chase's enumeration phase).
//  * Concurrent mode: after ReserveConcurrent, any number of threads may
//    call InsertConcurrent / ContainsConcurrent / CopyAtomsOf while
//    others read SnapshotSize() and atom(i) for i < SnapshotSize().
#ifndef GEREL_CORE_DATABASE_H_
#define GEREL_CORE_DATABASE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {

class Theory;
class WorkerPool;

// An append-only set of database atoms (ground over constants/nulls).
// Atom identities are dense indices [0, size()); insertion order is
// preserved, which the chase relies on for fairness.
class Database {
 public:
  Database() = default;
  Database(const Database& other) { CopyFrom(other); }
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept { MoveFrom(&other); }
  Database& operator=(Database&& other) noexcept;

  // Inserts `atom`; returns true if it was new. CHECK-fails on atoms
  // containing variables. Owner mode only.
  bool Insert(const Atom& atom);
  // Like Insert, but postings-index maintenance is deferred; call
  // IndexNewAtoms before the next AtomsOf/AtomsAt. Lets the chase merge
  // append a whole round cheaply and build the postings in parallel.
  bool InsertDeferIndex(const Atom& atom);
  // Builds postings for all atoms inserted since the last build. With a
  // pool of >1 lanes the shards are built in parallel; the result is
  // identical to the sequential build (each shard's postings are
  // appended in atom-index order by a single lane).
  void IndexNewAtoms(WorkerPool* pool = nullptr);
  // Batched InsertDeferIndex: inserts `batch` in order, writing 1 into
  // (*is_new)[i] iff batch[i] was new (first occurrence wins for
  // in-batch duplicates, exactly as a sequential InsertDeferIndex loop).
  // Returns the number of new atoms. With a pool of >1 lanes the dedup
  // hashing, per-shard set inserts, and segment appends run in parallel
  // (shard-per-lane over the concurrent-mode set shards, scatter into a
  // ReserveConcurrent-pre-sized directory); the resulting atom order,
  // dedup outcome, and postings are byte-identical to the sequential
  // loop for any lane count. Owner mode only; postings stay deferred
  // until IndexNewAtoms.
  size_t InsertBatchDeferIndex(const std::vector<Atom>& batch,
                               WorkerPool* pool,
                               std::vector<uint8_t>* is_new);

  bool Contains(const Atom& atom) const;

  // ---- Concurrent mode ----
  // Pre-sizes the segment directory for up to `max_atoms` atoms so the
  // directory never reallocates under concurrent appenders. Owner mode
  // call; must precede the first InsertConcurrent.
  void ReserveConcurrent(size_t max_atoms);
  // Thread-safe insert (striped dedup lock + append lock). Returns true
  // if the atom was new. CHECK-fails if ReserveConcurrent capacity is
  // exceeded. Postings are maintained under the append lock; concurrent
  // readers must use CopyAtomsOf, not AtomsOf.
  bool InsertConcurrent(const Atom& atom);
  bool ContainsConcurrent(const Atom& atom) const;
  // Number of atoms published to concurrent readers: every i <
  // SnapshotSize() is safe to pass to atom(i) from any thread.
  size_t SnapshotSize() const { return size_.load(std::memory_order_acquire); }
  // Locked copy of AtomsOf for readers racing InsertConcurrent.
  std::vector<uint32_t> CopyAtomsOf(RelationId pred) const;

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  const Atom& atom(size_t i) const {
    return (*segments_[i >> kSegmentBits])[i & kSegmentMask];
  }

  // A lightweight view over the atoms in insertion order (the segmented
  // store has no single contiguous vector to expose).
  class AtomIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Atom;
    using difference_type = std::ptrdiff_t;
    using pointer = const Atom*;
    using reference = const Atom&;

    AtomIterator(const Database* db, size_t i) : db_(db), i_(i) {}
    reference operator*() const { return db_->atom(i_); }
    pointer operator->() const { return &db_->atom(i_); }
    AtomIterator& operator++() {
      ++i_;
      return *this;
    }
    AtomIterator operator++(int) {
      AtomIterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const AtomIterator& a, const AtomIterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const AtomIterator& a, const AtomIterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const Database* db_;
    size_t i_;
  };
  class AtomRange {
   public:
    AtomRange(const Database* db, size_t n) : db_(db), n_(n) {}
    AtomIterator begin() const { return AtomIterator(db_, 0); }
    AtomIterator end() const { return AtomIterator(db_, n_); }
    size_t size() const { return n_; }

   private:
    const Database* db_;
    size_t n_;
  };
  // Lvalue-only: iterating the atoms of a *temporary* database would
  // dangle (the classic range-for-over-member pitfall), so it is a
  // compile error.
  AtomRange atoms() const& { return AtomRange(this, size()); }
  AtomRange atoms() const&& = delete;
  // Materialized copy, for callers that need a real vector.
  std::vector<Atom> AtomsVector() const;

  // Indices of atoms with the given relation.
  const std::vector<uint32_t>& AtomsOf(RelationId pred) const;
  // Indices of atoms with `term` at flattened position `pos` of `pred`
  // (argument positions first, then annotation positions).
  const std::vector<uint32_t>& AtomsAt(RelationId pred, uint32_t pos,
                                       Term term) const;
  // Whether the (relation, position, term) index is maintained.
  void set_position_index_enabled(bool enabled);
  bool position_index_enabled() const { return position_index_enabled_; }

  // Distinct ground terms occurring in atoms (constants and nulls), in
  // first-occurrence order. Excludes atoms of `except` (pass the acdom
  // relation to get the active domain).
  std::vector<Term> ActiveTerms(RelationId except) const;
  std::vector<Term> ActiveTerms() const;
  // Distinct constants occurring in atoms.
  std::vector<Term> ActiveConstants() const;

  // Restricts to atoms whose relation is in `preds`; preserves order.
  Database Restrict(const std::vector<RelationId>& preds) const;

  friend bool operator==(const Database& a, const Database& b);

 private:
  static constexpr size_t kSegmentBits = 9;  // 512 atoms per segment.
  static constexpr size_t kSegmentSize = size_t{1} << kSegmentBits;
  static constexpr size_t kSegmentMask = kSegmentSize - 1;
  static constexpr size_t kSetShards = 16;
  static constexpr size_t kIndexShards = 8;

  using Segment = std::array<Atom, kSegmentSize>;

  // A (relation, position, term) index key. The seed packed all three
  // into 64 bits as (pred << 40) ^ (pos << 32) ^ term.bits(), which let
  // any position >= 256 bleed into the relation bits (a high-arity atom
  // could alias another relation's postings); the full 96 bits are kept
  // collision-free here.
  struct PositionKey {
    uint64_t pred_pos = 0;  // pred << 32 | pos
    uint32_t term = 0;

    PositionKey() = default;
    PositionKey(RelationId pred, uint32_t pos, Term t)
        : pred_pos((static_cast<uint64_t>(pred) << 32) | pos),
          term(t.bits()) {}

    friend bool operator==(const PositionKey& a, const PositionKey& b) {
      return a.pred_pos == b.pred_pos && a.term == b.term;
    }
  };
  struct PositionKeyHash {
    size_t operator()(const PositionKey& k) const {
      uint64_t h = (k.pred_pos + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
      h ^= (static_cast<uint64_t>(k.term) + 0x94D049BB133111EBull) *
           0xC2B2AE3D27D4EB4Full;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  struct SetShard {
    std::unordered_set<Atom, AtomHash> set;
    mutable std::mutex mu;  // Locked by the Concurrent entry points only.
  };

  static size_t SetShardOf(const Atom& atom) {
    return AtomHash()(atom) % kSetShards;
  }
  static size_t RelationShardOf(RelationId pred) {
    return static_cast<size_t>(pred) % kIndexShards;
  }
  size_t PositionShardOf(const PositionKey& key) const {
    return PositionKeyHash()(key) % kIndexShards;
  }

  void CopyFrom(const Database& other);
  void MoveFrom(Database* other);
  // Appends the atom to segment storage (allocating the next segment if
  // needed) and publishes the new size. Returns the atom's index. With
  // allow_grow false the segment directory must already have a slot
  // (ReserveConcurrent), so concurrent readers never race a directory
  // reallocation.
  uint32_t Append(const Atom& atom, bool allow_grow);
  // Appends the postings of one atom to its shards.
  void IndexAtom(const Atom& atom, uint32_t index);
  // Builds the postings of shard `shard` for atom indices [begin, end).
  void IndexShardRange(size_t shard, size_t begin, size_t end);

  std::vector<std::unique_ptr<Segment>> segments_;
  std::atomic<size_t> size_{0};
  std::array<SetShard, kSetShards> set_shards_;
  std::array<std::unordered_map<RelationId, std::vector<uint32_t>>,
             kIndexShards>
      by_relation_;
  std::array<
      std::unordered_map<PositionKey, std::vector<uint32_t>, PositionKeyHash>,
      kIndexShards>
      by_position_;
  // Atoms [0, indexed_upto_) have postings; InsertDeferIndex leaves the
  // tail unindexed until IndexNewAtoms.
  size_t indexed_upto_ = 0;
  bool position_index_enabled_ = true;
  // Serializes concurrent appends (segment allocation, postings).
  mutable std::mutex append_mu_;
};

// The name of the built-in active-constant-domain relation (paper §2,
// "Further Notions").
inline constexpr char kAcdomName[] = "acdom";

// Interns and returns the acdom relation id.
RelationId AcdomRelation(SymbolTable* symbols);

// Adds acdom(t) for every term occurring in a non-acdom atom of `db` and
// for every constant of `theory` (theory constants materialize as → R(c)
// facts in the chase root, so they belong to the active domain).
void PopulateAcdom(const Theory& theory, SymbolTable* symbols, Database* db);

}  // namespace gerel

#endif  // GEREL_CORE_DATABASE_H_
