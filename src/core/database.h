// Databases: sets of atoms over constants and labeled nulls (paper §2),
// with per-relation and per-(relation, position, term) indexes used by the
// homomorphism matcher, the chase, and the Datalog engine.
#ifndef GEREL_CORE_DATABASE_H_
#define GEREL_CORE_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {

class Theory;

// An append-only set of database atoms (ground over constants/nulls).
// Atom identities are dense indices [0, size()); insertion order is
// preserved, which the chase relies on for fairness.
class Database {
 public:
  Database() = default;

  // Inserts `atom`; returns true if it was new. CHECK-fails on atoms
  // containing variables.
  bool Insert(const Atom& atom);
  bool Contains(const Atom& atom) const;

  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }
  const Atom& atom(size_t i) const { return atoms_[i]; }
  // Lvalue-only: iterating the atoms of a *temporary* database would
  // dangle (the classic range-for-over-member pitfall), so it is a
  // compile error.
  const std::vector<Atom>& atoms() const& { return atoms_; }
  const std::vector<Atom>& atoms() const&& = delete;

  // Indices of atoms with the given relation.
  const std::vector<uint32_t>& AtomsOf(RelationId pred) const;
  // Indices of atoms with `term` at flattened position `pos` of `pred`
  // (argument positions first, then annotation positions).
  const std::vector<uint32_t>& AtomsAt(RelationId pred, uint32_t pos,
                                       Term term) const;
  // Whether the (relation, position, term) index is maintained.
  void set_position_index_enabled(bool enabled);
  bool position_index_enabled() const { return position_index_enabled_; }

  // Distinct ground terms occurring in atoms (constants and nulls), in
  // first-occurrence order. Excludes atoms of `except` (pass the acdom
  // relation to get the active domain).
  std::vector<Term> ActiveTerms(RelationId except) const;
  std::vector<Term> ActiveTerms() const;
  // Distinct constants occurring in atoms.
  std::vector<Term> ActiveConstants() const;

  // Restricts to atoms whose relation is in `preds`; preserves order.
  Database Restrict(const std::vector<RelationId>& preds) const;

  friend bool operator==(const Database& a, const Database& b);

 private:
  // A (relation, position, term) index key. The seed packed all three
  // into 64 bits as (pred << 40) ^ (pos << 32) ^ term.bits(), which let
  // any position >= 256 bleed into the relation bits (a high-arity atom
  // could alias another relation's postings); the full 96 bits are kept
  // collision-free here.
  struct PositionKey {
    uint64_t pred_pos = 0;  // pred << 32 | pos
    uint32_t term = 0;

    PositionKey() = default;
    PositionKey(RelationId pred, uint32_t pos, Term t)
        : pred_pos((static_cast<uint64_t>(pred) << 32) | pos),
          term(t.bits()) {}

    friend bool operator==(const PositionKey& a, const PositionKey& b) {
      return a.pred_pos == b.pred_pos && a.term == b.term;
    }
  };
  struct PositionKeyHash {
    size_t operator()(const PositionKey& k) const {
      uint64_t h = (k.pred_pos + 0x9E3779B97F4A7C15ull) * 0xBF58476D1CE4E5B9ull;
      h ^= (static_cast<uint64_t>(k.term) + 0x94D049BB133111EBull) * 0xC2B2AE3D27D4EB4Full;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  std::vector<Atom> atoms_;
  std::unordered_set<Atom, AtomHash> set_;
  std::unordered_map<RelationId, std::vector<uint32_t>> by_relation_;
  std::unordered_map<PositionKey, std::vector<uint32_t>, PositionKeyHash>
      by_position_;
  bool position_index_enabled_ = true;
};

// The name of the built-in active-constant-domain relation (paper §2,
// "Further Notions").
inline constexpr char kAcdomName[] = "acdom";

// Interns and returns the acdom relation id.
RelationId AcdomRelation(SymbolTable* symbols);

// Adds acdom(t) for every term occurring in a non-acdom atom of `db` and
// for every constant of `theory` (theory constants materialize as → R(c)
// facts in the chase root, so they belong to the active domain).
void PopulateAcdom(const Theory& theory, SymbolTable* symbols, Database* db);

}  // namespace gerel

#endif  // GEREL_CORE_DATABASE_H_
