#include "core/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace gerel {

namespace {

enum class TokenKind {
  kIdent,
  kQuoted,  // 'quoted constant' with \' and \\ escapes; text is unescaped.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPeriod,
  kArrow,
  kBang,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  Span span;  // Byte range in the source buffer (quotes included).
};

// "line L:C: message" plus a caret snippet of the offending line.
Status LocatedError(std::string_view source, Span span,
                    const std::string& message) {
  LineCol lc = OffsetToLineCol(source, span.begin);
  std::string out = "line " + std::to_string(lc.line) + ":" +
                    std::to_string(lc.col) + ": " + message;
  std::string snippet = CaretSnippet(source, span);
  if (!snippet.empty()) {
    out += "\n";
    // Snippet ends with '\n'; strip it so the status message does not.
    snippet.pop_back();
    out += snippet;
  }
  return Status::Error(out);
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      uint32_t start = static_cast<uint32_t>(pos_);
      auto single = [&](TokenKind kind, const char* text) {
        out.push_back({kind, text, {start, start + 1}});
        ++pos_;
      };
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '(') {
        single(TokenKind::kLParen, "(");
      } else if (c == ')') {
        single(TokenKind::kRParen, ")");
      } else if (c == '[') {
        single(TokenKind::kLBracket, "[");
      } else if (c == ']') {
        single(TokenKind::kRBracket, "]");
      } else if (c == ',') {
        single(TokenKind::kComma, ",");
      } else if (c == '.') {
        single(TokenKind::kPeriod, ".");
      } else if (c == '!') {
        single(TokenKind::kBang, "!");
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        out.push_back({TokenKind::kArrow, "->", {start, start + 2}});
        pos_ += 2;
      } else if (c == '\'') {
        // Quoted constant: any characters up to the closing quote, with
        // \' and \\ escapes. (A ' *inside* an identifier is part of the
        // identifier; only a leading ' opens a quote.)
        ++pos_;
        std::string text;
        bool closed = false;
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          char d = text_[pos_];
          if (d == '\\' && pos_ + 1 < text_.size()) {
            text += text_[pos_ + 1];
            pos_ += 2;
          } else if (d == '\'') {
            ++pos_;
            closed = true;
            break;
          } else {
            text += d;
            ++pos_;
          }
        }
        Span span{start, static_cast<uint32_t>(pos_)};
        if (!closed) {
          return LocatedError(text_, span, "unterminated quoted constant");
        }
        if (text.empty()) {
          return LocatedError(text_, span, "empty quoted constant");
        }
        out.push_back({TokenKind::kQuoted, std::move(text), span});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'' ||
                text_[pos_] == '#')) {
          ++pos_;
        }
        Span span{start, static_cast<uint32_t>(pos_)};
        out.push_back({TokenKind::kIdent,
                       std::string(text_.substr(start, pos_ - start)), span});
      } else {
        return LocatedError(text_, {start, start + 1},
                            "unexpected character '" + std::string(1, c) +
                                "'");
      }
    }
    uint32_t end = static_cast<uint32_t>(text_.size());
    out.push_back({TokenKind::kEnd, "", {end, end}});
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, std::vector<Token> tokens,
         SymbolTable* symbols, SourceMap* source_map)
      : text_(text),
        tokens_(std::move(tokens)),
        symbols_(symbols),
        map_(source_map) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEnd) {
      Result<void*> st = ParseStatement(&program);
      if (!st.ok()) return st.status();
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    Result<Rule> r = ParseRuleTokens(nullptr);
    if (!r.ok()) return r;
    if (Peek().kind == TokenKind::kPeriod) Advance();
    if (Peek().kind != TokenKind::kEnd) return Err("trailing input");
    return r;
  }

  Result<Atom> ParseSingleAtom() {
    Result<Atom> a = ParseAtomTokens(nullptr);
    if (!a.ok()) return a;
    if (Peek().kind == TokenKind::kPeriod) Advance();
    if (Peek().kind != TokenKind::kEnd) return Err("trailing input");
    return a;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& message) const {
    return LocatedError(text_, Peek().span, message);
  }

  // A statement is either a rule (contains "->") or a single ground fact.
  Result<void*> ParseStatement(Program* program) {
    // Lookahead for an arrow before the closing period.
    bool is_rule = false;
    for (size_t i = pos_; i < tokens_.size(); ++i) {
      if (tokens_[i].kind == TokenKind::kArrow) {
        is_rule = true;
        break;
      }
      if (tokens_[i].kind == TokenKind::kPeriod) {
        // Periods also appear after "exists X,Y" — but that is always
        // after an arrow, so the first period before any arrow ends a
        // fact.
        break;
      }
      if (tokens_[i].kind == TokenKind::kEnd) break;
    }
    if (is_rule) {
      RuleSpans spans;
      Result<Rule> r = ParseRuleTokens(map_ != nullptr ? &spans : nullptr);
      if (!r.ok()) return r.status();
      if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
      Advance();
      program->theory.AddRule(std::move(r).value());
      if (map_ != nullptr) map_->rules.push_back(std::move(spans));
      return nullptr;
    }
    // Spans are always collected here — the "fact contains variables"
    // error needs one even without a SourceMap attached.
    AtomSpans spans;
    Result<Atom> a = ParseAtomTokens(&spans);
    if (!a.ok()) return a.status();
    if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
    Advance();
    if (!a.value().IsDatabaseAtom()) {
      return LocatedError(text_, spans.span, "fact contains variables");
    }
    if (program->database.Insert(a.value()) && map_ != nullptr) {
      map_->facts.push_back(std::move(spans));
    }
    return nullptr;
  }

  Result<Rule> ParseRuleTokens(RuleSpans* spans) {
    Rule rule;
    Span rule_span = Peek().span;
    if (Peek().kind != TokenKind::kArrow) {
      // Parse body literals.
      while (true) {
        bool negated = false;
        if (Peek().kind == TokenKind::kBang ||
            (Peek().kind == TokenKind::kIdent && Peek().text == "not")) {
          negated = true;
          Advance();
        }
        AtomSpans aspans;
        Result<Atom> a = ParseAtomTokens(spans != nullptr ? &aspans : nullptr);
        if (!a.ok()) return a.status();
        rule.body.emplace_back(std::move(a).value(), negated);
        if (spans != nullptr) spans->body.push_back(std::move(aspans));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokenKind::kArrow) return Err("expected '->'");
    Advance();
    // Optional "exists X, Y."
    if (Peek().kind == TokenKind::kIdent && Peek().text == "exists") {
      Advance();
      while (true) {
        if (Peek().kind != TokenKind::kIdent) return Err("expected variable");
        const Token& tok = Advance();
        const std::string& name = tok.text;
        if (!std::isupper(static_cast<unsigned char>(name[0]))) {
          return LocatedError(
              text_, tok.span,
              "existential variable must start upper-case: " + name);
        }
        // Interning suffices; EVars() recomputes the set from occurrences.
        Term v = symbols_->Variable(name);
        if (spans != nullptr) spans->declared_evars.emplace_back(v, tok.span);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
      Advance();
    }
    while (true) {
      AtomSpans aspans;
      Result<Atom> a = ParseAtomTokens(spans != nullptr ? &aspans : nullptr);
      if (!a.ok()) return a.status();
      rule_span = Span::Join(rule_span, aspans.span);
      rule.head.push_back(std::move(a).value());
      if (spans != nullptr) spans->head.push_back(std::move(aspans));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (spans != nullptr) {
      for (const AtomSpans& a : spans->head) {
        rule_span = Span::Join(rule_span, a.span);
      }
      spans->span = rule_span;
    }
    return rule;
  }

  Result<Atom> ParseAtomTokens(AtomSpans* spans) {
    if (Peek().kind != TokenKind::kIdent) return Err("expected relation name");
    const Token& name_tok = Advance();
    std::string name = name_tok.text;
    Span atom_span = name_tok.span;
    Atom atom;
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      Result<std::vector<Term>> ts = ParseTermList(
          TokenKind::kRBracket, spans != nullptr ? &spans->annotation : nullptr,
          &atom_span);
      if (!ts.ok()) return ts.status();
      atom.annotation = std::move(ts).value();
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      Result<std::vector<Term>> ts = ParseTermList(
          TokenKind::kRParen, spans != nullptr ? &spans->args : nullptr,
          &atom_span);
      if (!ts.ok()) return ts.status();
      atom.args = std::move(ts).value();
    }
    // Arity consistency is a parse error, not a crash.
    if (symbols_->HasRelation(name)) {
      RelationId existing = symbols_->Relation(name);
      int recorded = symbols_->RelationArity(existing);
      if (recorded >= 0 && recorded != static_cast<int>(atom.arity())) {
        return LocatedError(
            text_, atom_span,
            "relation '" + name + "' used with arity " +
                std::to_string(atom.arity()) + " but declared with " +
                std::to_string(recorded));
      }
    }
    atom.pred = symbols_->Relation(name, static_cast<int>(atom.arity()));
    if (spans != nullptr) spans->span = atom_span;
    return atom;
  }

  Result<std::vector<Term>> ParseTermList(TokenKind closer,
                                          std::vector<Span>* term_spans,
                                          Span* enclosing) {
    std::vector<Term> out;
    auto close = [&]() {
      *enclosing = Span::Join(*enclosing, Peek().span);
      Advance();
    };
    if (Peek().kind == closer) {
      close();
      return out;
    }
    while (true) {
      if (Peek().kind == TokenKind::kQuoted) {
        const Token& tok = Advance();
        out.push_back(symbols_->Constant(tok.text));
        if (term_spans != nullptr) term_spans->push_back(tok.span);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kIdent) return Status(Err("expected term"));
      const Token& tok = Advance();
      const std::string& name = tok.text;
      if (name[0] == '_') {
        out.push_back(symbols_->NamedNull(name));
      } else if (std::isupper(static_cast<unsigned char>(name[0]))) {
        out.push_back(symbols_->Variable(name));
      } else {
        out.push_back(symbols_->Constant(name));
      }
      if (term_spans != nullptr) term_spans->push_back(tok.span);
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().kind != closer) return Status(Err("expected closing bracket"));
    close();
    return out;
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable* symbols_;
  SourceMap* map_;
};

Result<Parser> MakeParser(std::string_view text, SymbolTable* symbols,
                          SourceMap* source_map) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(text, std::move(tokens).value(), symbols, source_map);
}

}  // namespace

Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols) {
  return ParseProgram(text, symbols, nullptr);
}

Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols,
                             SourceMap* source_map) {
  if (source_map != nullptr) source_map->Reset(text);
  Result<Parser> p = MakeParser(text, symbols, source_map);
  if (!p.ok()) return p.status();
  return p.value().ParseProgram();
}

Result<Theory> ParseTheory(std::string_view text, SymbolTable* symbols) {
  Result<Program> prog = ParseProgram(text, symbols);
  if (!prog.ok()) return prog.status();
  if (!prog.value().database.empty()) {
    return Status::Error("expected rules only, found facts");
  }
  return std::move(prog).value().theory;
}

Result<Database> ParseDatabase(std::string_view text, SymbolTable* symbols) {
  Result<Program> prog = ParseProgram(text, symbols);
  if (!prog.ok()) return prog.status();
  if (!prog.value().theory.empty()) {
    return Status::Error("expected facts only, found rules");
  }
  return std::move(prog).value().database;
}

Result<Rule> ParseRule(std::string_view text, SymbolTable* symbols) {
  Result<Parser> p = MakeParser(text, symbols, nullptr);
  if (!p.ok()) return p.status();
  return p.value().ParseSingleRule();
}

Result<Atom> ParseAtom(std::string_view text, SymbolTable* symbols) {
  Result<Parser> p = MakeParser(text, symbols, nullptr);
  if (!p.ok()) return p.status();
  return p.value().ParseSingleAtom();
}

}  // namespace gerel
