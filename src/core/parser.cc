#include "core/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace gerel {

namespace {

enum class TokenKind {
  kIdent,
  kQuoted,  // 'quoted constant' with \' and \\ escapes; text is unescaped.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kPeriod,
  kArrow,
  kBang,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '(') {
        out.push_back({TokenKind::kLParen, "(", line_});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokenKind::kRParen, ")", line_});
        ++pos_;
      } else if (c == '[') {
        out.push_back({TokenKind::kLBracket, "[", line_});
        ++pos_;
      } else if (c == ']') {
        out.push_back({TokenKind::kRBracket, "]", line_});
        ++pos_;
      } else if (c == ',') {
        out.push_back({TokenKind::kComma, ",", line_});
        ++pos_;
      } else if (c == '.') {
        out.push_back({TokenKind::kPeriod, ".", line_});
        ++pos_;
      } else if (c == '!') {
        out.push_back({TokenKind::kBang, "!", line_});
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        out.push_back({TokenKind::kArrow, "->", line_});
        pos_ += 2;
      } else if (c == '\'') {
        // Quoted constant: any characters up to the closing quote, with
        // \' and \\ escapes. (A ' *inside* an identifier is part of the
        // identifier; only a leading ' opens a quote.)
        ++pos_;
        std::string text;
        bool closed = false;
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          char d = text_[pos_];
          if (d == '\\' && pos_ + 1 < text_.size()) {
            text += text_[pos_ + 1];
            pos_ += 2;
          } else if (d == '\'') {
            ++pos_;
            closed = true;
            break;
          } else {
            text += d;
            ++pos_;
          }
        }
        if (!closed) {
          return Status::Error("line " + std::to_string(line_) +
                               ": unterminated quoted constant");
        }
        if (text.empty()) {
          return Status::Error("line " + std::to_string(line_) +
                               ": empty quoted constant");
        }
        out.push_back({TokenKind::kQuoted, std::move(text), line_});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'' ||
                text_[pos_] == '#')) {
          ++pos_;
        }
        out.push_back(
            {TokenKind::kIdent, std::string(text_.substr(start, pos_ - start)),
             line_});
      } else {
        return Status::Error("line " + std::to_string(line_) +
                             ": unexpected character '" + std::string(1, c) +
                             "'");
      }
    }
    out.push_back({TokenKind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEnd) {
      Result<void*> st = ParseStatement(&program);
      if (!st.ok()) return st.status();
    }
    return program;
  }

  Result<Rule> ParseSingleRule() {
    Result<Rule> r = ParseRuleTokens();
    if (!r.ok()) return r;
    if (Peek().kind == TokenKind::kPeriod) Advance();
    if (Peek().kind != TokenKind::kEnd) return Err("trailing input");
    return r;
  }

  Result<Atom> ParseSingleAtom() {
    Result<Atom> a = ParseAtomTokens();
    if (!a.ok()) return a;
    if (Peek().kind == TokenKind::kPeriod) Advance();
    if (Peek().kind != TokenKind::kEnd) return Err("trailing input");
    return a;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  template <typename T = void*>
  Status ErrStatus(const std::string& message) const {
    return Status::Error("line " + std::to_string(Peek().line) + ": " +
                         message);
  }
  Status Err(const std::string& message) const { return ErrStatus(message); }

  // A statement is either a rule (contains "->") or a single ground fact.
  Result<void*> ParseStatement(Program* program) {
    // Lookahead for an arrow before the closing period.
    bool is_rule = false;
    for (size_t i = pos_; i < tokens_.size(); ++i) {
      if (tokens_[i].kind == TokenKind::kArrow) {
        is_rule = true;
        break;
      }
      if (tokens_[i].kind == TokenKind::kPeriod) {
        // Periods also appear after "exists X,Y" — but that is always
        // after an arrow, so the first period before any arrow ends a
        // fact.
        break;
      }
      if (tokens_[i].kind == TokenKind::kEnd) break;
    }
    if (is_rule) {
      Result<Rule> r = ParseRuleTokens();
      if (!r.ok()) return r.status();
      if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
      Advance();
      program->theory.AddRule(std::move(r).value());
      return nullptr;
    }
    Result<Atom> a = ParseAtomTokens();
    if (!a.ok()) return a.status();
    if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
    Advance();
    if (!a.value().IsDatabaseAtom()) return Err("fact contains variables");
    program->database.Insert(a.value());
    return nullptr;
  }

  Result<Rule> ParseRuleTokens() {
    Rule rule;
    if (Peek().kind != TokenKind::kArrow) {
      // Parse body literals.
      while (true) {
        bool negated = false;
        if (Peek().kind == TokenKind::kBang ||
            (Peek().kind == TokenKind::kIdent && Peek().text == "not")) {
          negated = true;
          Advance();
        }
        Result<Atom> a = ParseAtomTokens();
        if (!a.ok()) return a.status();
        rule.body.emplace_back(std::move(a).value(), negated);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokenKind::kArrow) return Err("expected '->'");
    Advance();
    // Optional "exists X, Y."
    if (Peek().kind == TokenKind::kIdent && Peek().text == "exists") {
      Advance();
      while (true) {
        if (Peek().kind != TokenKind::kIdent) return Err("expected variable");
        const std::string& name = Advance().text;
        if (!std::isupper(static_cast<unsigned char>(name[0]))) {
          return Err("existential variable must start upper-case: " + name);
        }
        // Interning suffices; EVars() recomputes the set from occurrences.
        symbols_->Variable(name);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kPeriod) return Err("expected '.'");
      Advance();
    }
    while (true) {
      Result<Atom> a = ParseAtomTokens();
      if (!a.ok()) return a.status();
      rule.head.push_back(std::move(a).value());
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return rule;
  }

  Result<Atom> ParseAtomTokens() {
    if (Peek().kind != TokenKind::kIdent) return Err("expected relation name");
    std::string name = Advance().text;
    Atom atom;
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      Result<std::vector<Term>> ts = ParseTermList(TokenKind::kRBracket);
      if (!ts.ok()) return ts.status();
      atom.annotation = std::move(ts).value();
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      Result<std::vector<Term>> ts = ParseTermList(TokenKind::kRParen);
      if (!ts.ok()) return ts.status();
      atom.args = std::move(ts).value();
    }
    // Arity consistency is a parse error, not a crash.
    if (symbols_->HasRelation(name)) {
      RelationId existing = symbols_->Relation(name);
      int recorded = symbols_->RelationArity(existing);
      if (recorded >= 0 && recorded != static_cast<int>(atom.arity())) {
        return Err("relation '" + name + "' used with arity " +
                   std::to_string(atom.arity()) + " but declared with " +
                   std::to_string(recorded));
      }
    }
    atom.pred = symbols_->Relation(name, static_cast<int>(atom.arity()));
    return atom;
  }

  Result<std::vector<Term>> ParseTermList(TokenKind closer) {
    std::vector<Term> out;
    if (Peek().kind == closer) {
      Advance();
      return out;
    }
    while (true) {
      if (Peek().kind == TokenKind::kQuoted) {
        out.push_back(symbols_->Constant(Advance().text));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().kind != TokenKind::kIdent) return Status(Err("expected term"));
      const std::string& name = Advance().text;
      if (name[0] == '_') {
        out.push_back(symbols_->NamedNull(name));
      } else if (std::isupper(static_cast<unsigned char>(name[0]))) {
        out.push_back(symbols_->Variable(name));
      } else {
        out.push_back(symbols_->Constant(name));
      }
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().kind != closer) return Status(Err("expected closing bracket"));
    Advance();
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable* symbols_;
};

Result<Parser> MakeParser(std::string_view text, SymbolTable* symbols) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value(), symbols);
}

}  // namespace

Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols) {
  Result<Parser> p = MakeParser(text, symbols);
  if (!p.ok()) return p.status();
  return p.value().ParseProgram();
}

Result<Theory> ParseTheory(std::string_view text, SymbolTable* symbols) {
  Result<Program> prog = ParseProgram(text, symbols);
  if (!prog.ok()) return prog.status();
  if (!prog.value().database.empty()) {
    return Status::Error("expected rules only, found facts");
  }
  return std::move(prog).value().theory;
}

Result<Database> ParseDatabase(std::string_view text, SymbolTable* symbols) {
  Result<Program> prog = ParseProgram(text, symbols);
  if (!prog.ok()) return prog.status();
  if (!prog.value().theory.empty()) {
    return Status::Error("expected facts only, found rules");
  }
  return std::move(prog).value().database;
}

Result<Rule> ParseRule(std::string_view text, SymbolTable* symbols) {
  Result<Parser> p = MakeParser(text, symbols);
  if (!p.ok()) return p.status();
  return p.value().ParseSingleRule();
}

Result<Atom> ParseAtom(std::string_view text, SymbolTable* symbols) {
  Result<Parser> p = MakeParser(text, symbols);
  if (!p.ok()) return p.status();
  return p.value().ParseSingleAtom();
}

}  // namespace gerel
