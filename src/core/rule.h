// Existential rules (paper §2, form (1)) and rules with stratified
// negation (§8, form (2)).
//
//   B1 ∧ ... ∧ Bn → ∃y1,...,yk. H1 ∧ ... ∧ Hm
//
// The body may be empty (n ≥ 0); the head is non-empty (m ≥ 1). Body
// literals may be negated for stratified theories. Universal variables
// uvars(σ) are the body variables; existential variables evars(σ) are the
// head variables not occurring in the (positive) body; the frontier
// fvars(σ) is vars(head) \ evars(σ).
#ifndef GEREL_CORE_RULE_H_
#define GEREL_CORE_RULE_H_

#include <string>
#include <vector>

#include "core/atom.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {

struct Rule {
  std::vector<Literal> body;
  std::vector<Atom> head;

  Rule() = default;
  Rule(std::vector<Literal> b, std::vector<Atom> h)
      : body(std::move(b)), head(std::move(h)) {}
  // Convenience for positive bodies.
  static Rule Positive(const std::vector<Atom>& body_atoms,
                       std::vector<Atom> head_atoms);

  // --- Variable sets (paper §2) ------------------------------------------
  // All sets use argument *and* annotation variables except where noted;
  // guard/frontier checks in classify.h use argument variables only.

  // uvars(σ): distinct variables of the body, in first-occurrence order.
  std::vector<Term> UVars() const;
  // evars(σ): head variables with no occurrence in the body.
  std::vector<Term> EVars() const;
  // fvars(σ): head variables that also occur in the body (the frontier).
  std::vector<Term> FVars() const;
  // All distinct variables of the rule.
  std::vector<Term> Vars() const;

  // --- Structure ---------------------------------------------------------

  bool IsDatalog() const { return EVars().empty(); }
  // True iff the body is empty and the head is a single atom over
  // constants (the normal form "→ R(c)" of Def 4(iii)).
  bool IsFact() const;
  bool HasNegation() const;
  // Positive body atoms, in order.
  std::vector<Atom> PositiveBody() const;

  // All constants occurring in the rule.
  std::vector<Term> Constants() const;

  // Safety (paper §2 and Def 22): every head variable that is not
  // existential occurs in the positive body, and every variable of a
  // negative literal occurs in some positive literal.
  Status Validate(const SymbolTable& symbols) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.body == b.body && a.head == b.head;
  }
  friend bool operator!=(const Rule& a, const Rule& b) { return !(a == b); }
};

struct RuleHash {
  size_t operator()(const Rule& r) const;
};

}  // namespace gerel

#endif  // GEREL_CORE_RULE_H_
