// Graphviz (DOT) renderings of theory structure: the predicate
// dependency graph and the weak-acyclicity position graph. (Chase trees
// render via ChaseTreeDot in chase/chase_tree.h.) Useful for debugging
// translations and for documentation figures.
#ifndef GEREL_CORE_GRAPHVIZ_H_
#define GEREL_CORE_GRAPHVIZ_H_

#include <string>

#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

// The predicate dependency graph: an edge R → S when some rule has R in
// its body and S in its head; dashed when the rule is existential.
std::string PredicateGraphDot(const Theory& theory,
                              const SymbolTable& symbols);

// The position dependency graph used by weak acyclicity: regular edges
// solid, special (existential) edges bold red.
std::string PositionGraphDot(const Theory& theory,
                             const SymbolTable& symbols);

}  // namespace gerel

#endif  // GEREL_CORE_GRAPHVIZ_H_
