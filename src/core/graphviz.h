// Graphviz (DOT) renderings of theory structure: the predicate
// dependency graph and the weak-acyclicity position graph. (Chase trees
// render via ChaseTreeDot in chase/chase_tree.h.) Useful for debugging
// translations and for documentation figures.
#ifndef GEREL_CORE_GRAPHVIZ_H_
#define GEREL_CORE_GRAPHVIZ_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/acyclicity.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

// The predicate dependency graph: an edge R → S when some rule has R in
// its body and S in its head; dashed when the rule is existential.
std::string PredicateGraphDot(const Theory& theory,
                              const SymbolTable& symbols);

// The position dependency graph used by weak acyclicity: regular edges
// solid, special (existential) edges bold red.
std::string PositionGraphDot(const Theory& theory,
                             const SymbolTable& symbols);

// The existential (Skolem) dependency graph used by joint acyclicity:
// one node per Skolem function ("r<rule>.<var>"), an edge f → g when
// g-nulls can be built on top of f-nulls. `highlight` is an optional
// walk of function indices (e.g. a termination certificate's cyclic
// witness path, first index repeated at the end); its nodes and edges
// render bold red.
std::string ExistentialGraphDot(const ExistentialDependencyGraph& graph,
                                const SymbolTable& symbols,
                                const std::vector<size_t>& highlight = {});

}  // namespace gerel

#endif  // GEREL_CORE_GRAPHVIZ_H_
