// Compiled join plans for conjunctive pattern matching.
//
// The interpreted matcher (homomorphism.cc of the seed) re-derived the
// most-constrained-atom order at every recursion node and copied a
// hash-map Substitution around every candidate atom. A JoinPlan compiles
// a pattern once: variables are mapped to dense slots in a flat Term
// binding array, the atom order is fixed up front (most bound positions
// first, replicating the dynamic heuristic exactly for ground bindings),
// and backtracking unwinds an undo trail instead of copying state. The
// Datalog evaluator and the chase compile one plan per (rule, delta-atom
// position) at construction time and reuse an executor across rounds.
#ifndef GEREL_CORE_JOIN_PLAN_H_
#define GEREL_CORE_JOIN_PLAN_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/substitution.h"

namespace gerel {

class JoinExecutor;

// A pattern atom compiled against a plan's slot mapping: one spec per
// flattened position (argument positions first, then annotation).
struct PositionSpec {
  // kTerm: compare the candidate term against `term` (a constant, null,
  // or rigid variable). kSlot: if the slot is bound, compare against its
  // value; otherwise bind it (recorded on the trail).
  enum Kind : uint8_t { kTerm, kSlot };
  Kind kind = kTerm;
  Term term;
  uint32_t slot = 0;
  uint32_t pos = 0;  // Flattened position, for the per-position index.
};

// One join level: the pattern atom to match at this depth.
struct PlanLevel {
  RelationId pred = 0;
  uint32_t num_args = 0;  // Candidates must split args/annotation equally.
  uint32_t num_annotation = 0;
  std::vector<PositionSpec> specs;
};

// An atom compiled for fast application of a match's bindings (rule
// heads, negated body literals, trigger keys). Terms without a slot
// (constants, nulls, variables foreign to the plan) pass through.
struct CompiledAtom {
  struct Entry {
    bool is_slot = false;
    Term term;
    uint32_t slot = 0;
  };
  RelationId pred = 0;
  uint32_t num_args = 0;
  std::vector<Entry> entries;  // args then annotation
};

class JoinPlan {
 public:
  JoinPlan() = default;
  // Compiles `pattern`. Variables listed in `pre_bound` receive slots
  // (even when absent from the pattern) and count as bound for the
  // join-order heuristic; the caller seeds them via JoinExecutor::Bind.
  // If `pinned_first` is >= 0, pattern[pinned_first] becomes level 0 (the
  // semi-naive delta atom, matched against a single seed candidate via
  // ExecuteSeeded); the remaining atoms are ordered greedily by the
  // number of statically bound positions, ties broken by pattern index —
  // the exact order the seed's dynamic heuristic produced.
  explicit JoinPlan(const std::vector<Atom>& pattern,
                    const std::vector<Term>& pre_bound = {},
                    int pinned_first = -1) {
    Recompile(pattern, pre_bound, pinned_first);
  }

  // Recompiles in place, reusing internal buffers (hot callers like the
  // saturation calculus compile a fresh tiny pattern per subset split).
  void Recompile(const std::vector<Atom>& pattern,
                 const std::vector<Term>& pre_bound = {},
                 int pinned_first = -1);

  // Compiles `atom` against this plan's slots for JoinExecutor::Apply.
  CompiledAtom Compile(const Atom& atom) const;

  size_t num_slots() const { return var_of_slot_.size(); }
  size_t num_levels() const { return levels_.size(); }
  const std::vector<PlanLevel>& levels() const { return levels_; }
  // Slot of `var`, or -1 if the plan does not know it.
  int SlotOf(Term var) const;
  Term VarOfSlot(uint32_t slot) const { return var_of_slot_[slot]; }

 private:
  uint32_t SlotFor(Term var);  // Interns a slot during compilation.

  std::vector<PlanLevel> levels_;
  // var bits -> slot. Patterns are small (rule bodies, subset splits), so
  // a flat array with linear lookup beats a hash map's per-node
  // allocations; plans compiled per call (ForEachEmbedding) stay cheap.
  std::vector<std::pair<uint32_t, uint32_t>> slot_of_;
  std::vector<Term> var_of_slot_;
  // Compilation scratch, kept to make Recompile allocation-free in
  // steady state.
  std::vector<std::vector<int32_t>> pos_slots_;
  std::vector<bool> bound_scratch_;
  std::vector<bool> used_scratch_;
  std::vector<uint32_t> order_scratch_;
};

// Runs a plan against a Database or a plain atom vector. Holds the slot
// binding array, the undo trail, and per-level scratch buffers; reusable
// across executions (and across plans of the same or different shapes).
class JoinExecutor {
 public:
  // Visitor invoked per complete match; the executor's accessors are
  // valid for the duration of the call. Return false to stop.
  using Visitor = std::function<bool(const JoinExecutor&)>;

  JoinExecutor() = default;

  // Enumerates matches of `plan` in `db`, extending any bindings seeded
  // via Bind() since the last Reset(). If `db_grows`, the visitor may
  // insert into `db` mid-enumeration: candidate lists are copied into
  // per-level scratch buffers (the seed matcher's snapshot semantics);
  // read-only visitors iterate the index postings in place. Returns
  // false iff the visitor stopped the enumeration.
  bool Execute(const JoinPlan& plan, const Database& db,
               const Visitor& visitor, bool db_grows);

  // As Execute, but level 0 (the plan's pinned atom) is matched only
  // against `seed`. Resets bindings first. Mismatching seeds (wrong
  // relation or repeated-variable conflict) visit nothing. `seed_index`
  // is the seed's database index, reported through MatchedAtomIndices()
  // for callers recording derivation supports; pass 0 if unused.
  bool ExecuteSeeded(const JoinPlan& plan, const Database& db,
                     const Atom& seed, const Visitor& visitor, bool db_grows,
                     uint32_t seed_index = 0);

  // Enumerates embeddings into a plain atom set (read-only). Target
  // variables are rigid: pattern variables may bind onto them, but they
  // are never remapped.
  bool ExecuteOnAtoms(const JoinPlan& plan, const std::vector<Atom>& target,
                      const Visitor& visitor);

  // Clears all bindings (sizing the executor for `plan`), then allows
  // seeding pre-bound slots with Bind().
  void Reset(const JoinPlan& plan);
  // Binds `var` to `value` before execution; vars unknown to the plan
  // are ignored.
  void Bind(Term var, Term value);

  // --- Accessors for visitors (valid during Execute*) -------------------
  // The image of `t`: its slot's value if t is a bound pattern variable,
  // t itself otherwise.
  Term Value(Term t) const;
  // Instantiates a compiled atom under the current bindings.
  Atom Apply(const CompiledAtom& atom) const;
  // Materializes the bound slots as a Substitution (appended to `out`).
  void AppendBindings(Substitution* out) const;
  // Database indices of the candidate atoms matched at each plan level,
  // in level order (one per level). Valid during the visitor of Execute
  // and ExecuteSeeded against a Database; ExecuteOnAtoms does not
  // maintain it. The support log of a retractable fixpoint reads this.
  const std::vector<uint32_t>& MatchedAtomIndices() const { return matched_; }

 private:
  bool MatchCandidate(const PlanLevel& level, const Atom& candidate,
                      size_t trail_mark);
  void UnwindTo(size_t trail_mark);
  bool RecurseDb(const JoinPlan& plan, const Database& db, size_t depth,
                 const Visitor& visitor, bool db_grows);
  bool RecurseAtoms(const JoinPlan& plan, const std::vector<Atom>& target,
                    size_t depth, const Visitor& visitor);

  const JoinPlan* plan_ = nullptr;  // Set during Execute*.
  std::vector<Term> bindings_;
  std::vector<uint8_t> bound_;
  std::vector<uint32_t> trail_;
  std::vector<uint32_t> matched_;  // Per-level matched atom index.
  // Per-depth candidate copies for db_grows mode; capacity persists
  // across executions so steady-state rounds do not allocate.
  std::vector<std::vector<uint32_t>> scratch_;
};

}  // namespace gerel

#endif  // GEREL_CORE_JOIN_PLAN_H_
