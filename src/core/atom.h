// Atoms R(t1, ..., tn) and annotated atoms R[~a](~t) (paper §2).
//
// An annotated relation name R[~a] carries a tuple of terms in its name;
// the paper uses annotations to stash terms occurring in non-affected
// positions while translating weakly frontier-guarded theories (§5.2).
// We represent the annotation as a second term vector on the atom. The
// relation's declared arity counts args + annotation so that a(Σ)/a⁻(Σ)
// (Defs 17, 18) are inverse re-partitionings of the same positions.
#ifndef GEREL_CORE_ATOM_H_
#define GEREL_CORE_ATOM_H_

#include <cstdint>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {

// An atom over a relation, with argument terms and an optional annotation.
struct Atom {
  RelationId pred = 0;
  std::vector<Term> args;
  std::vector<Term> annotation;

  Atom() = default;
  Atom(RelationId p, std::vector<Term> a) : pred(p), args(std::move(a)) {}
  Atom(RelationId p, std::vector<Term> a, std::vector<Term> ann)
      : pred(p), args(std::move(a)), annotation(std::move(ann)) {}

  size_t arity() const { return args.size() + annotation.size(); }
  bool IsAnnotated() const { return !annotation.empty(); }

  // True iff all argument and annotation terms are constants. (Atoms over
  // constants and nulls are "database atoms"; see Atom::IsDatabaseAtom.)
  bool IsGroundOverConstants() const;
  // True iff no term is a variable (constants and nulls allowed).
  bool IsDatabaseAtom() const;

  // All terms: args then annotation, in position order.
  std::vector<Term> AllTerms() const;
  // Distinct variables among the argument positions only. Guard and
  // frontier checks use argument variables (annotation terms never count
  // as "occurring in" an atom for guardedness; see Def "safely annotated").
  std::vector<Term> ArgVars() const;
  // Distinct variables among args and annotation.
  std::vector<Term> AllVars() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.args == b.args &&
           a.annotation == b.annotation;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b);
};

struct AtomHash {
  size_t operator()(const Atom& a) const;
};

// A body literal: an atom, possibly negated (stratified theories, §8).
struct Literal {
  Atom atom;
  bool negated = false;

  Literal() = default;
  explicit Literal(Atom a, bool neg = false)
      : atom(std::move(a)), negated(neg) {}

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.negated == b.negated && a.atom == b.atom;
  }
  friend bool operator!=(const Literal& a, const Literal& b) {
    return !(a == b);
  }
};

}  // namespace gerel

#endif  // GEREL_CORE_ATOM_H_
