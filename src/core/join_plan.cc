#include "core/join_plan.h"

#include <algorithm>

#include "core/check.h"

namespace gerel {

namespace {

}  // namespace

uint32_t JoinPlan::SlotFor(Term var) {
  for (const auto& [bits, slot] : slot_of_) {
    if (bits == var.bits()) return slot;
  }
  uint32_t slot = static_cast<uint32_t>(var_of_slot_.size());
  slot_of_.emplace_back(var.bits(), slot);
  var_of_slot_.push_back(var);
  return slot;
}

void JoinPlan::Recompile(const std::vector<Atom>& pattern,
                         const std::vector<Term>& pre_bound,
                         int pinned_first) {
  slot_of_.clear();
  var_of_slot_.clear();
  for (Term v : pre_bound) {
    GEREL_CHECK(v.IsVariable());
    SlotFor(v);
  }
  // Pattern variables get slots in first-occurrence order; cache the slot
  // of every flattened position so the greedy ordering below does no
  // further lookups.
  if (pos_slots_.size() < pattern.size()) pos_slots_.resize(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    std::vector<int32_t>& slots = pos_slots_[i];
    slots.clear();
    auto intern = [&](const std::vector<Term>& terms) {
      for (Term t : terms) {
        slots.push_back(t.IsVariable() ? static_cast<int32_t>(SlotFor(t))
                                       : -1);
      }
    };
    intern(pattern[i].args);
    intern(pattern[i].annotation);
  }

  bound_scratch_.assign(var_of_slot_.size(), false);
  for (size_t s = 0; s < pre_bound.size(); ++s) bound_scratch_[s] = true;

  used_scratch_.assign(pattern.size(), false);
  order_scratch_.clear();
  auto take = [&](size_t i) {
    used_scratch_[i] = true;
    order_scratch_.push_back(static_cast<uint32_t>(i));
    for (int32_t s : pos_slots_[i]) {
      if (s >= 0) bound_scratch_[s] = true;
    }
  };
  // Statically bound positions of an atom: ground terms plus variables
  // whose slot is already bound. Mirrors the seed matcher's dynamic
  // BoundCount, which is determined by the chosen-atom prefix alone
  // (every successful atom match binds all of its variables).
  auto static_bound_count = [&](size_t i) {
    int n = 0;
    for (int32_t s : pos_slots_[i]) {
      if (s < 0 || bound_scratch_[s]) ++n;
    }
    return n;
  };
  if (pinned_first >= 0) {
    GEREL_CHECK(static_cast<size_t>(pinned_first) < pattern.size());
    take(static_cast<size_t>(pinned_first));
  }
  while (order_scratch_.size() < pattern.size()) {
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (used_scratch_[i]) continue;
      int b = static_bound_count(i);
      if (b > best_bound) {
        best_bound = b;
        best = static_cast<int>(i);
      }
    }
    take(static_cast<size_t>(best));
  }

  levels_.resize(pattern.size());
  for (size_t d = 0; d < order_scratch_.size(); ++d) {
    uint32_t pi = order_scratch_[d];
    const Atom& a = pattern[pi];
    const std::vector<int32_t>& slots = pos_slots_[pi];
    PlanLevel& level = levels_[d];
    level.pred = a.pred;
    level.num_args = static_cast<uint32_t>(a.args.size());
    level.num_annotation = static_cast<uint32_t>(a.annotation.size());
    level.specs.clear();
    level.specs.reserve(slots.size());
    uint32_t pos = 0;
    auto add = [&](Term t) {
      PositionSpec spec;
      spec.pos = pos;
      if (slots[pos] >= 0) {
        spec.kind = PositionSpec::kSlot;
        spec.slot = static_cast<uint32_t>(slots[pos]);
      } else {
        spec.kind = PositionSpec::kTerm;
        spec.term = t;
      }
      ++pos;
      level.specs.push_back(spec);
    };
    for (Term t : a.args) add(t);
    for (Term t : a.annotation) add(t);
  }
}

CompiledAtom JoinPlan::Compile(const Atom& atom) const {
  CompiledAtom out;
  out.pred = atom.pred;
  out.num_args = static_cast<uint32_t>(atom.args.size());
  out.entries.reserve(atom.args.size() + atom.annotation.size());
  auto add = [&](Term t) {
    CompiledAtom::Entry e;
    e.term = t;
    int slot = t.IsVariable() ? SlotOf(t) : -1;
    if (slot >= 0) {
      e.is_slot = true;
      e.slot = static_cast<uint32_t>(slot);
    }
    out.entries.push_back(e);
  };
  for (Term t : atom.args) add(t);
  for (Term t : atom.annotation) add(t);
  return out;
}

int JoinPlan::SlotOf(Term var) const {
  for (const auto& [bits, slot] : slot_of_) {
    if (bits == var.bits()) return static_cast<int>(slot);
  }
  return -1;
}

void JoinExecutor::Reset(const JoinPlan& plan) {
  plan_ = &plan;
  bindings_.assign(plan.num_slots(), Term());
  bound_.assign(plan.num_slots(), 0);
  trail_.clear();
  matched_.assign(plan.num_levels(), 0);
  if (scratch_.size() < plan.num_levels()) scratch_.resize(plan.num_levels());
}

void JoinExecutor::Bind(Term var, Term value) {
  int slot = plan_->SlotOf(var);
  if (slot < 0) return;
  bindings_[slot] = value;
  bound_[slot] = 1;
}

Term JoinExecutor::Value(Term t) const {
  if (!t.IsVariable()) return t;
  int slot = plan_->SlotOf(t);
  if (slot < 0 || !bound_[slot]) return t;
  return bindings_[slot];
}

Atom JoinExecutor::Apply(const CompiledAtom& atom) const {
  Atom out;
  out.pred = atom.pred;
  out.args.reserve(atom.num_args);
  out.annotation.reserve(atom.entries.size() - atom.num_args);
  for (size_t i = 0; i < atom.entries.size(); ++i) {
    const CompiledAtom::Entry& e = atom.entries[i];
    Term t = (e.is_slot && bound_[e.slot]) ? bindings_[e.slot] : e.term;
    if (i < atom.num_args) {
      out.args.push_back(t);
    } else {
      out.annotation.push_back(t);
    }
  }
  return out;
}

void JoinExecutor::AppendBindings(Substitution* out) const {
  for (size_t s = 0; s < bindings_.size(); ++s) {
    if (bound_[s]) out->Bind(plan_->VarOfSlot(static_cast<uint32_t>(s)),
                             bindings_[s]);
  }
}

bool JoinExecutor::MatchCandidate(const PlanLevel& level, const Atom& candidate,
                                  size_t trail_mark) {
  if (candidate.pred != level.pred ||
      candidate.args.size() != level.num_args ||
      candidate.annotation.size() != level.num_annotation) {
    return false;
  }
  for (const PositionSpec& spec : level.specs) {
    Term t = spec.pos < level.num_args
                 ? candidate.args[spec.pos]
                 : candidate.annotation[spec.pos - level.num_args];
    if (spec.kind == PositionSpec::kTerm) {
      if (t != spec.term) {
        UnwindTo(trail_mark);
        return false;
      }
    } else if (bound_[spec.slot]) {
      if (bindings_[spec.slot] != t) {
        UnwindTo(trail_mark);
        return false;
      }
    } else {
      bindings_[spec.slot] = t;
      bound_[spec.slot] = 1;
      trail_.push_back(spec.slot);
    }
  }
  return true;
}

void JoinExecutor::UnwindTo(size_t trail_mark) {
  while (trail_.size() > trail_mark) {
    bound_[trail_.back()] = 0;
    trail_.pop_back();
  }
}

bool JoinExecutor::RecurseDb(const JoinPlan& plan, const Database& db,
                             size_t depth, const Visitor& visitor,
                             bool db_grows) {
  if (depth == plan.num_levels()) return visitor(*this);
  const PlanLevel& level = plan.levels()[depth];
  // Pick the most selective index available: the per-relation postings,
  // or the shortest per-(relation, position, term) postings among the
  // positions whose value is known here.
  const std::vector<uint32_t>* postings = &db.AtomsOf(level.pred);
  if (db.position_index_enabled()) {
    for (const PositionSpec& spec : level.specs) {
      Term v;
      if (spec.kind == PositionSpec::kTerm) {
        v = spec.term;
      } else if (bound_[spec.slot]) {
        v = bindings_[spec.slot];
      } else {
        continue;
      }
      if (v.IsVariable()) continue;  // Rigid-variable image: no index.
      const std::vector<uint32_t>& cand = db.AtomsAt(level.pred, spec.pos, v);
      if (cand.size() < postings->size()) postings = &cand;
    }
  }
  size_t mark = trail_.size();
  if (db_grows) {
    // The visitor may insert into the database mid-enumeration, which can
    // reallocate the postings; copy them into this level's scratch buffer
    // (capacity reused across rounds).
    std::vector<uint32_t>& snapshot = scratch_[depth];
    snapshot.assign(postings->begin(), postings->end());
    for (uint32_t ai : snapshot) {
      if (MatchCandidate(level, db.atom(ai), mark)) {
        matched_[depth] = ai;
        bool keep_going = RecurseDb(plan, db, depth + 1, visitor, db_grows);
        UnwindTo(mark);
        if (!keep_going) return false;
      }
    }
  } else {
    for (uint32_t ai : *postings) {
      if (MatchCandidate(level, db.atom(ai), mark)) {
        matched_[depth] = ai;
        bool keep_going = RecurseDb(plan, db, depth + 1, visitor, db_grows);
        UnwindTo(mark);
        if (!keep_going) return false;
      }
    }
  }
  return true;
}

bool JoinExecutor::RecurseAtoms(const JoinPlan& plan,
                                const std::vector<Atom>& target, size_t depth,
                                const Visitor& visitor) {
  if (depth == plan.num_levels()) return visitor(*this);
  const PlanLevel& level = plan.levels()[depth];
  size_t mark = trail_.size();
  for (const Atom& candidate : target) {
    if (MatchCandidate(level, candidate, mark)) {
      bool keep_going = RecurseAtoms(plan, target, depth + 1, visitor);
      UnwindTo(mark);
      if (!keep_going) return false;
    }
  }
  return true;
}

bool JoinExecutor::Execute(const JoinPlan& plan, const Database& db,
                           const Visitor& visitor, bool db_grows) {
  GEREL_CHECK(plan_ == &plan);  // Reset(plan) first (then seed via Bind).
  trail_.clear();
  return RecurseDb(plan, db, 0, visitor, db_grows);
}

bool JoinExecutor::ExecuteSeeded(const JoinPlan& plan, const Database& db,
                                 const Atom& seed, const Visitor& visitor,
                                 bool db_grows, uint32_t seed_index) {
  Reset(plan);
  if (!MatchCandidate(plan.levels()[0], seed, 0)) return true;
  matched_[0] = seed_index;
  return RecurseDb(plan, db, 1, visitor, db_grows);
}

bool JoinExecutor::ExecuteOnAtoms(const JoinPlan& plan,
                                  const std::vector<Atom>& target,
                                  const Visitor& visitor) {
  GEREL_CHECK(plan_ == &plan);
  trail_.clear();
  return RecurseAtoms(plan, target, 0, visitor);
}

}  // namespace gerel
