#include "core/normalize.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/classify.h"
#include "core/substitution.h"

namespace gerel {

namespace {

// Distinct variables occurring in annotations of `atoms`.
std::vector<Term> AnnotationVars(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  for (const Atom& a : atoms) {
    for (Term t : a.annotation) {
      if (t.IsVariable() &&
          std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
  return out;
}

// Step (iii): replace constants in non-fact rules by fresh variables bound
// via const#<c>(Xc) atoms, adding → const#<c>(c) fact rules.
void ExtractConstants(const Theory& in, SymbolTable* symbols, Theory* out) {
  std::vector<Term> fact_constants;
  for (const Rule& rule : in.rules()) {
    if (rule.IsFact() || rule.Constants().empty()) {
      out->AddRule(rule);
      continue;
    }
    Rule r = rule;
    for (Term c : rule.Constants()) {
      std::string cname = "const#" + symbols->ConstantName(c);
      RelationId crel = symbols->Relation(cname, 1);
      Term xc = symbols->FreshVariable("Xc");
      // Replace c by xc everywhere in the rule.
      auto replace = [&](Atom* a) {
        for (Term& t : a->args) {
          if (t == c) t = xc;
        }
        for (Term& t : a->annotation) {
          if (t == c) t = xc;
        }
      };
      for (Literal& l : r.body) replace(&l.atom);
      for (Atom& h : r.head) replace(&h);
      r.body.emplace_back(Atom(crel, {xc}), /*negated=*/false);
      if (std::find(fact_constants.begin(), fact_constants.end(), c) ==
          fact_constants.end()) {
        fact_constants.push_back(c);
        out->AddRule(Rule({}, {Atom(crel, {c})}));
      }
    }
    out->AddRule(std::move(r));
  }
}

// Step (i): split multi-atom heads through a fresh collector relation
// aux(fvars, evars) carrying the annotation variables of the head.
void SplitHeads(const Theory& in, SymbolTable* symbols, Theory* out) {
  for (const Rule& rule : in.rules()) {
    if (rule.head.size() <= 1) {
      out->AddRule(rule);
      continue;
    }
    std::vector<Term> fvars = rule.FVars();
    std::vector<Term> evars = rule.EVars();
    std::vector<Term> ann = AnnotationVars(rule.head);
    // Annotation vars that are universal go into the collector's
    // annotation; existential ones cannot occur in safe annotations.
    std::vector<Term> collector_args = fvars;
    // Remove annotation vars from args (they live in the annotation slot).
    collector_args.erase(
        std::remove_if(collector_args.begin(), collector_args.end(),
                       [&ann](Term v) {
                         return std::find(ann.begin(), ann.end(), v) !=
                                ann.end();
                       }),
        collector_args.end());
    for (Term e : evars) collector_args.push_back(e);
    RelationId aux = symbols->FreshRelation(
        "aux", static_cast<int>(collector_args.size() + ann.size()));
    Atom collector(aux, collector_args, ann);
    out->AddRule(Rule(rule.body, {collector}));
    for (const Atom& h : rule.head) {
      out->AddRule(Rule({Literal(collector)}, {h}));
    }
  }
}

// Step (ii): split unguarded existential rules σ into
//   body(σ) → aux(fvars)   and   aux(fvars) → ∃evars. head(σ).
void GuardExistentialRules(const Theory& in, SymbolTable* symbols,
                           Theory* out) {
  for (const Rule& rule : in.rules()) {
    if (rule.EVars().empty() || IsGuardedRule(rule)) {
      out->AddRule(rule);
      continue;
    }
    GEREL_CHECK(rule.head.size() == 1);  // SplitHeads ran first.
    std::vector<Term> fvars = rule.FVars();
    std::vector<Term> ann = AnnotationVars(rule.head);
    std::vector<Term> aux_args = fvars;
    aux_args.erase(std::remove_if(aux_args.begin(), aux_args.end(),
                                  [&ann](Term v) {
                                    return std::find(ann.begin(), ann.end(),
                                                     v) != ann.end();
                                  }),
                   aux_args.end());
    RelationId aux = symbols->FreshRelation(
        "aux", static_cast<int>(aux_args.size() + ann.size()));
    Atom bridge(aux, aux_args, ann);
    out->AddRule(Rule(rule.body, {bridge}));
    out->AddRule(Rule({Literal(bridge)}, rule.head));
  }
}

}  // namespace

Theory Normalize(const Theory& theory, SymbolTable* symbols,
                 const NormalizeOptions& options) {
  Theory stage = theory;
  if (options.extract_constants) {
    Theory next;
    ExtractConstants(stage, symbols, &next);
    stage = std::move(next);
  }
  if (options.split_heads) {
    Theory next;
    SplitHeads(stage, symbols, &next);
    stage = std::move(next);
  }
  if (options.guard_existential_rules) {
    Theory next;
    GuardExistentialRules(stage, symbols, &next);
    stage = std::move(next);
  }
  return stage;
}

bool IsNormal(const Theory& theory) {
  for (const Rule& rule : theory.rules()) {
    if (rule.head.size() != 1) return false;
    if (!rule.EVars().empty() && !IsGuardedRule(rule)) return false;
    if (!rule.Constants().empty() && !rule.IsFact()) return false;
  }
  return true;
}

}  // namespace gerel
