#include "core/source_map.h"

#include <algorithm>

namespace gerel {

Span Span::Join(Span a, Span b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Span{std::min(a.begin, b.begin), std::max(a.end, b.end)};
}

LineCol OffsetToLineCol(std::string_view text, uint32_t offset) {
  uint32_t clamped =
      std::min<uint32_t>(offset, static_cast<uint32_t>(text.size()));
  LineCol out;
  uint32_t line_start = 0;
  for (uint32_t i = 0; i < clamped; ++i) {
    if (text[i] == '\n') {
      ++out.line;
      line_start = i + 1;
    }
  }
  out.col = clamped - line_start + 1;
  return out;
}

std::string CaretSnippet(std::string_view text, Span span) {
  if (span.begin >= text.size()) return "";
  // A span can start on a newline itself (e.g. an error reported at end
  // of line); anchor the snippet on the line before it so the caret
  // lands one past its last character instead of underflowing.
  size_t search = span.begin;
  if (text[search] == '\n') {
    if (search == 0) return "";
    --search;
  }
  size_t line_begin = text.rfind('\n', search);
  line_begin = (line_begin == std::string_view::npos) ? 0 : line_begin + 1;
  size_t line_end = text.find('\n', span.begin);
  if (line_end == std::string_view::npos) line_end = text.size();
  std::string_view line = text.substr(line_begin, line_end - line_begin);
  size_t caret_at = span.begin - line_begin;
  size_t caret_len = span.empty()
                         ? 1
                         : std::min<size_t>(span.end, line_end) - span.begin;
  if (caret_len == 0) caret_len = 1;
  std::string out = "  ";
  out.append(line);
  out += "\n  ";
  out.append(caret_at, ' ');
  out += '^';
  out.append(caret_len - 1, '~');
  out += '\n';
  return out;
}

void SourceMap::Reset(std::string_view text) {
  text_.assign(text);
  rules.clear();
  facts.clear();
}

}  // namespace gerel
