#include "core/symbol_table.h"

#include <string>

#include "core/check.h"

namespace gerel {

RelationId SymbolTable::Relation(std::string_view name, int arity) {
  auto it = relation_ids_.find(std::string(name));
  if (it != relation_ids_.end()) {
    if (arity >= 0) {
      int& recorded = relation_arities_[it->second];
      if (recorded < 0) {
        recorded = arity;
      } else {
        GEREL_CHECK(recorded == arity);
      }
    }
    return it->second;
  }
  RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_ids_.emplace(std::string(name), id);
  relation_names_.emplace_back(name);
  relation_arities_.push_back(arity);
  return id;
}

const std::string& SymbolTable::RelationName(RelationId id) const {
  GEREL_CHECK(id < relation_names_.size());
  return relation_names_[id];
}

int SymbolTable::RelationArity(RelationId id) const {
  GEREL_CHECK(id < relation_arities_.size());
  return relation_arities_[id];
}

void SymbolTable::SetRelationArity(RelationId id, int arity) {
  GEREL_CHECK(id < relation_arities_.size());
  int& recorded = relation_arities_[id];
  if (recorded < 0) {
    recorded = arity;
  } else {
    GEREL_CHECK(recorded == arity);
  }
}

bool SymbolTable::HasRelation(std::string_view name) const {
  return relation_ids_.count(std::string(name)) > 0;
}

RelationId SymbolTable::FreshRelation(std::string_view base, int arity) {
  std::string candidate;
  do {
    candidate = std::string(base) + "#" + std::to_string(fresh_counter_++);
  } while (relation_ids_.count(candidate) > 0);
  return Relation(candidate, arity);
}

Term SymbolTable::Constant(std::string_view name) {
  auto it = constant_ids_.find(std::string(name));
  if (it != constant_ids_.end()) return Term::Constant(it->second);
  uint32_t id = static_cast<uint32_t>(constant_names_.size());
  constant_ids_.emplace(std::string(name), id);
  constant_names_.emplace_back(name);
  return Term::Constant(id);
}

const std::string& SymbolTable::ConstantName(Term t) const {
  GEREL_CHECK(t.IsConstant() && t.id() < constant_names_.size());
  return constant_names_[t.id()];
}

Term SymbolTable::Variable(std::string_view name) {
  auto it = variable_ids_.find(std::string(name));
  if (it != variable_ids_.end()) return Term::Variable(it->second);
  uint32_t id = static_cast<uint32_t>(variable_names_.size());
  variable_ids_.emplace(std::string(name), id);
  variable_names_.emplace_back(name);
  return Term::Variable(id);
}

const std::string& SymbolTable::VariableName(Term t) const {
  GEREL_CHECK(t.IsVariable() && t.id() < variable_names_.size());
  return variable_names_[t.id()];
}

Term SymbolTable::FreshVariable(std::string_view base) {
  std::string candidate;
  do {
    candidate = std::string(base) + "#" + std::to_string(fresh_counter_++);
  } while (variable_ids_.count(candidate) > 0);
  return Variable(candidate);
}

Term SymbolTable::NamedNull(std::string_view name) {
  auto it = named_nulls_.find(std::string(name));
  if (it != named_nulls_.end()) return Term::Null(it->second);
  uint32_t id = next_null_++;
  named_nulls_.emplace(std::string(name), id);
  return Term::Null(id);
}

std::string SymbolTable::TermName(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return ConstantName(t);
    case TermKind::kVariable:
      return VariableName(t);
    case TermKind::kNull:
      // Named nulls print by their id too: names are only used to merge
      // occurrences at parse time.
      return "_n" + std::to_string(t.id());
  }
  GEREL_CHECK(false);
  return "";
}

}  // namespace gerel
