#include "core/parallel.h"

namespace gerel {

WorkerPool::WorkerPool(size_t num_threads) {
  size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Drain(size_t lane) {
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks_) return;
    (*fn_)(i, lane);
  }
}

void WorkerPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  RunIndexed(num_tasks, [&fn](size_t task, size_t) { fn(task); });
}

void WorkerPool::RunIndexed(size_t num_tasks,
                            const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    active_ = threads_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  Drain(0);  // The calling thread is lane 0 of the pool.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::WorkerLoop(size_t lane) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    Drain(lane);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gerel
