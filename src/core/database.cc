#include "core/database.h"

#include <algorithm>

#include "core/check.h"
#include "core/parallel.h"
#include "core/theory.h"

namespace gerel {

namespace {
const std::vector<uint32_t> kEmptyPostings;
// Below this many pending atoms the parallel index build is not worth
// the task dispatch.
constexpr size_t kParallelIndexThreshold = 256;
}  // namespace

void Database::CopyFrom(const Database& other) {
  size_t n = other.size();
  segments_.clear();
  segments_.reserve(other.segments_.size());
  for (const auto& seg : other.segments_) {
    segments_.push_back(seg ? std::make_unique<Segment>(*seg) : nullptr);
  }
  size_.store(n, std::memory_order_relaxed);
  for (size_t s = 0; s < kSetShards; ++s) {
    set_shards_[s].set = other.set_shards_[s].set;
  }
  by_relation_ = other.by_relation_;
  by_position_ = other.by_position_;
  indexed_upto_ = other.indexed_upto_;
  position_index_enabled_ = other.position_index_enabled_;
}

void Database::MoveFrom(Database* other) {
  segments_ = std::move(other->segments_);
  size_.store(other->size_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (size_t s = 0; s < kSetShards; ++s) {
    set_shards_[s].set = std::move(other->set_shards_[s].set);
  }
  by_relation_ = std::move(other->by_relation_);
  by_position_ = std::move(other->by_position_);
  indexed_upto_ = other->indexed_upto_;
  position_index_enabled_ = other->position_index_enabled_;
  other->segments_.clear();
  other->size_.store(0, std::memory_order_relaxed);
  other->indexed_upto_ = 0;
}

Database& Database::operator=(const Database& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Database& Database::operator=(Database&& other) noexcept {
  if (this != &other) MoveFrom(&other);
  return *this;
}

uint32_t Database::Append(const Atom& atom, bool allow_grow) {
  size_t index = size_.load(std::memory_order_relaxed);
  size_t seg = index >> kSegmentBits;
  if (seg >= segments_.size()) {
    // Growing the directory moves its slots; forbidden while concurrent
    // readers may be traversing it (ReserveConcurrent pre-sizes it).
    GEREL_CHECK(allow_grow);
    segments_.push_back(std::make_unique<Segment>());
  } else if (!segments_[seg]) {
    segments_[seg] = std::make_unique<Segment>();
  }
  (*segments_[seg])[index & kSegmentMask] = atom;
  size_.store(index + 1, std::memory_order_release);
  return static_cast<uint32_t>(index);
}

void Database::IndexAtom(const Atom& atom, uint32_t index) {
  by_relation_[RelationShardOf(atom.pred)][atom.pred].push_back(index);
  if (position_index_enabled_) {
    uint32_t pos = 0;
    for (Term t : atom.args) {
      PositionKey key(atom.pred, pos++, t);
      by_position_[PositionShardOf(key)][key].push_back(index);
    }
    for (Term t : atom.annotation) {
      PositionKey key(atom.pred, pos++, t);
      by_position_[PositionShardOf(key)][key].push_back(index);
    }
  }
}

void Database::IndexShardRange(size_t shard, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const Atom& a = atom(i);
    uint32_t index = static_cast<uint32_t>(i);
    if (RelationShardOf(a.pred) == shard) {
      by_relation_[shard][a.pred].push_back(index);
    }
    if (position_index_enabled_) {
      uint32_t pos = 0;
      for (Term t : a.args) {
        PositionKey key(a.pred, pos++, t);
        if (PositionShardOf(key) == shard) {
          by_position_[shard][key].push_back(index);
        }
      }
      for (Term t : a.annotation) {
        PositionKey key(a.pred, pos++, t);
        if (PositionShardOf(key) == shard) {
          by_position_[shard][key].push_back(index);
        }
      }
    }
  }
}

bool Database::Insert(const Atom& atom) {
  if (!InsertDeferIndex(atom)) return false;
  IndexNewAtoms(nullptr);
  return true;
}

bool Database::InsertDeferIndex(const Atom& atom) {
  GEREL_CHECK(atom.IsDatabaseAtom());
  if (!set_shards_[SetShardOf(atom)].set.insert(atom).second) return false;
  Append(atom, /*allow_grow=*/true);
  return true;
}

size_t Database::InsertBatchDeferIndex(const std::vector<Atom>& batch,
                                       WorkerPool* pool,
                                       std::vector<uint8_t>* is_new) {
  size_t n = batch.size();
  is_new->assign(n, 0);
  if (n == 0) return 0;
  if (pool == nullptr || pool->num_threads() <= 1) {
    size_t added = 0;
    for (size_t i = 0; i < n; ++i) {
      if (InsertDeferIndex(batch[i])) {
        (*is_new)[i] = 1;
        ++added;
      }
    }
    return added;
  }
  // Phase 1 — hash every atom in parallel; the shard id is the only
  // per-atom state the dedup phase needs.
  std::vector<uint8_t> shard_of(n);
  constexpr size_t kHashChunk = 1024;
  size_t chunks = (n + kHashChunk - 1) / kHashChunk;
  pool->Run(chunks, [&](size_t c) {
    size_t end = std::min((c + 1) * kHashChunk, n);
    for (size_t i = c * kHashChunk; i < end; ++i) {
      GEREL_CHECK(batch[i].IsDatabaseAtom());
      shard_of[i] = static_cast<uint8_t>(SetShardOf(batch[i]));
    }
  });
  // Phase 2 — partition candidate indices by shard, in batch order, so
  // each shard sees its candidates in the same order the sequential
  // loop would (first occurrence of an in-batch duplicate wins).
  std::array<std::vector<uint32_t>, kSetShards> members;
  for (size_t i = 0; i < n; ++i) {
    members[shard_of[i]].push_back(static_cast<uint32_t>(i));
  }
  // Phase 3 — per-shard dedup in parallel. Each shard's set is touched
  // by exactly one lane (no locks), and duplicate atoms always hash to
  // the same shard, so the newness marks match the sequential loop.
  pool->Run(kSetShards, [&](size_t s) {
    for (uint32_t i : members[s]) {
      if (set_shards_[s].set.insert(batch[i]).second) (*is_new)[i] = 1;
    }
  });
  // Phase 4 — assign final indices in batch order and pre-size storage
  // so the scatter below never grows the directory concurrently.
  size_t base = size();
  std::vector<uint32_t> new_list;
  for (size_t i = 0; i < n; ++i) {
    if ((*is_new)[i]) new_list.push_back(static_cast<uint32_t>(i));
  }
  if (new_list.empty()) return 0;
  size_t end = base + new_list.size();
  ReserveConcurrent(end);
  for (size_t seg = base >> kSegmentBits; seg < (end + kSegmentMask) >>
                                                    kSegmentBits;
       ++seg) {
    if (!segments_[seg]) segments_[seg] = std::make_unique<Segment>();
  }
  // Phase 5 — scatter the new atoms into their slots in parallel
  // (distinct slots per task; the single size_ publish below is the
  // only cross-thread handoff) and publish the new size once.
  size_t scatter_chunks = (new_list.size() + kHashChunk - 1) / kHashChunk;
  pool->Run(scatter_chunks, [&](size_t c) {
    size_t stop = std::min((c + 1) * kHashChunk, new_list.size());
    for (size_t r = c * kHashChunk; r < stop; ++r) {
      size_t index = base + r;
      (*segments_[index >> kSegmentBits])[index & kSegmentMask] =
          batch[new_list[r]];
    }
  });
  size_.store(end, std::memory_order_release);
  return new_list.size();
}

void Database::IndexNewAtoms(WorkerPool* pool) {
  size_t end = size();
  if (indexed_upto_ >= end) return;
  size_t begin = indexed_upto_;
  if (pool != nullptr && pool->num_threads() > 1 &&
      end - begin >= kParallelIndexThreshold) {
    // Shard ownership makes the parallel build deterministic: each shard
    // is written by exactly one lane, scanning atoms in index order, so
    // every postings list ends up byte-identical to a sequential build.
    pool->Run(kIndexShards,
              [&](size_t shard) { IndexShardRange(shard, begin, end); });
  } else {
    for (size_t i = begin; i < end; ++i) {
      IndexAtom(atom(i), static_cast<uint32_t>(i));
    }
  }
  indexed_upto_ = end;
}

bool Database::Contains(const Atom& atom) const {
  return set_shards_[SetShardOf(atom)].set.count(atom) > 0;
}

void Database::ReserveConcurrent(size_t max_atoms) {
  size_t slots = (max_atoms + kSegmentSize - 1) >> kSegmentBits;
  if (slots > segments_.size()) segments_.resize(slots);
}

bool Database::InsertConcurrent(const Atom& atom) {
  GEREL_CHECK(atom.IsDatabaseAtom());
  SetShard& shard = set_shards_[SetShardOf(atom)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.set.insert(atom).second) return false;
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  uint32_t index = Append(atom, /*allow_grow=*/false);
  IndexAtom(atom, index);
  indexed_upto_ = index + 1;
  return true;
}

bool Database::ContainsConcurrent(const Atom& atom) const {
  const SetShard& shard = set_shards_[SetShardOf(atom)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.set.count(atom) > 0;
}

std::vector<uint32_t> Database::CopyAtomsOf(RelationId pred) const {
  std::lock_guard<std::mutex> lock(append_mu_);
  auto& shard = by_relation_[RelationShardOf(pred)];
  auto it = shard.find(pred);
  return it == shard.end() ? std::vector<uint32_t>() : it->second;
}

std::vector<Atom> Database::AtomsVector() const {
  std::vector<Atom> out;
  size_t n = size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(atom(i));
  return out;
}

const std::vector<uint32_t>& Database::AtomsOf(RelationId pred) const {
  GEREL_CHECK(indexed_upto_ == size());  // IndexNewAtoms owed first.
  const auto& shard = by_relation_[RelationShardOf(pred)];
  auto it = shard.find(pred);
  return it == shard.end() ? kEmptyPostings : it->second;
}

const std::vector<uint32_t>& Database::AtomsAt(RelationId pred, uint32_t pos,
                                               Term term) const {
  GEREL_CHECK(position_index_enabled_);
  GEREL_CHECK(indexed_upto_ == size());  // IndexNewAtoms owed first.
  PositionKey key(pred, pos, term);
  const auto& shard = by_position_[PositionShardOf(key)];
  auto it = shard.find(key);
  return it == shard.end() ? kEmptyPostings : it->second;
}

void Database::set_position_index_enabled(bool enabled) {
  GEREL_CHECK(empty());  // Must be configured before inserts.
  position_index_enabled_ = enabled;
}

std::vector<Term> Database::ActiveTerms(RelationId except) const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (const Atom& a : atoms()) {
    if (a.pred == except) continue;
    for (Term t : a.AllTerms()) {
      if (seen.insert(t.bits()).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<Term> Database::ActiveTerms() const {
  return ActiveTerms(static_cast<RelationId>(-1));
}

std::vector<Term> Database::ActiveConstants() const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (const Atom& a : atoms()) {
    for (Term t : a.AllTerms()) {
      if (t.IsConstant() && seen.insert(t.bits()).second) out.push_back(t);
    }
  }
  return out;
}

Database Database::Restrict(const std::vector<RelationId>& preds) const {
  Database out;
  for (const Atom& a : atoms()) {
    if (std::find(preds.begin(), preds.end(), a.pred) != preds.end())
      out.Insert(a);
  }
  return out;
}

bool operator==(const Database& a, const Database& b) {
  if (a.size() != b.size()) return false;
  for (const Atom& atom : a.atoms()) {
    if (!b.Contains(atom)) return false;
  }
  return true;
}

RelationId AcdomRelation(SymbolTable* symbols) {
  return symbols->Relation(kAcdomName, 1);
}

void PopulateAcdom(const Theory& theory, SymbolTable* symbols, Database* db) {
  RelationId acdom = AcdomRelation(symbols);
  for (Term t : db->ActiveTerms(acdom)) {
    db->Insert(Atom(acdom, {t}));
  }
  for (Term c : theory.Constants()) {
    db->Insert(Atom(acdom, {c}));
  }
}

}  // namespace gerel
