#include "core/database.h"

#include <algorithm>

#include "core/check.h"
#include "core/theory.h"

namespace gerel {

namespace {
const std::vector<uint32_t> kEmptyPostings;
}  // namespace

bool Database::Insert(const Atom& atom) {
  GEREL_CHECK(atom.IsDatabaseAtom());
  auto [it, inserted] = set_.insert(atom);
  if (!inserted) return false;
  uint32_t index = static_cast<uint32_t>(atoms_.size());
  atoms_.push_back(atom);
  by_relation_[atom.pred].push_back(index);
  if (position_index_enabled_) {
    uint32_t pos = 0;
    for (Term t : atom.args)
      by_position_[PositionKey(atom.pred, pos++, t)].push_back(index);
    for (Term t : atom.annotation)
      by_position_[PositionKey(atom.pred, pos++, t)].push_back(index);
  }
  return true;
}

bool Database::Contains(const Atom& atom) const {
  return set_.count(atom) > 0;
}

const std::vector<uint32_t>& Database::AtomsOf(RelationId pred) const {
  auto it = by_relation_.find(pred);
  return it == by_relation_.end() ? kEmptyPostings : it->second;
}

const std::vector<uint32_t>& Database::AtomsAt(RelationId pred, uint32_t pos,
                                               Term term) const {
  GEREL_CHECK(position_index_enabled_);
  auto it = by_position_.find(PositionKey(pred, pos, term));
  return it == by_position_.end() ? kEmptyPostings : it->second;
}

void Database::set_position_index_enabled(bool enabled) {
  GEREL_CHECK(atoms_.empty());  // Must be configured before inserts.
  position_index_enabled_ = enabled;
}

std::vector<Term> Database::ActiveTerms(RelationId except) const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (const Atom& a : atoms_) {
    if (a.pred == except) continue;
    for (Term t : a.AllTerms()) {
      if (seen.insert(t.bits()).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<Term> Database::ActiveTerms() const {
  return ActiveTerms(static_cast<RelationId>(-1));
}

std::vector<Term> Database::ActiveConstants() const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (const Atom& a : atoms_) {
    for (Term t : a.AllTerms()) {
      if (t.IsConstant() && seen.insert(t.bits()).second) out.push_back(t);
    }
  }
  return out;
}

Database Database::Restrict(const std::vector<RelationId>& preds) const {
  Database out;
  for (const Atom& a : atoms_) {
    if (std::find(preds.begin(), preds.end(), a.pred) != preds.end())
      out.Insert(a);
  }
  return out;
}

bool operator==(const Database& a, const Database& b) {
  if (a.size() != b.size()) return false;
  for (const Atom& atom : a.atoms_) {
    if (!b.Contains(atom)) return false;
  }
  return true;
}

RelationId AcdomRelation(SymbolTable* symbols) {
  return symbols->Relation(kAcdomName, 1);
}

void PopulateAcdom(const Theory& theory, SymbolTable* symbols, Database* db) {
  RelationId acdom = AcdomRelation(symbols);
  for (Term t : db->ActiveTerms(acdom)) {
    db->Insert(Atom(acdom, {t}));
  }
  for (Term c : theory.Constants()) {
    db->Insert(Atom(acdom, {c}));
  }
}

}  // namespace gerel
