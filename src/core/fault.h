// Deterministic fault injection for the robustness harness.
//
// A FaultPlan names concrete failure points — "exhaust the budget when
// the chase reaches round 3", "sleep 200µs in every other worker unit",
// "truncate the snapshot payload at byte 100" — that the governed
// engines (chase, saturation, Datalog, snapshot writer) consult through
// their ExecutionBudget (core/budget.h) or directly. Plans are explicit
// and seeded by the caller, never random at the injection site, so a
// faulted run is exactly reproducible.
//
// Plans reach production code two ways: tests pass a plan into an
// ExecutionBudget or a snapshot write directly, and the GEREL_FAULT
// environment variable installs a process-global plan for CLI-level
// fault drills (parsed once; an invalid spec is reported on stderr and
// ignored).
#ifndef GEREL_CORE_FAULT_H_
#define GEREL_CORE_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"

namespace gerel {

// The governed pipeline stages, shared with DegradationReason
// (core/budget.h): which loop a budget check or fault fires in.
enum class GovernedStage : uint8_t {
  kNone = 0,
  kChase,
  kRewrite,     // fg→ng / wfg→wg expansion closures.
  kGrounding,   // pg(Σ, D).
  kSaturation,  // Ξ(Σ) closure.
  kDatalog,     // Bottom-up evaluation rounds.
  kQuery,       // Per-query join enumeration.
  kSnapshot,    // Snapshot save/load.
};

const char* GovernedStageName(GovernedStage stage);
bool ParseGovernedStage(std::string_view name, GovernedStage* out);

struct FaultPlan {
  // Force budget exhaustion when `exhaust_stage` reaches (1-based) round
  // `exhaust_round`. 0 disables.
  GovernedStage exhaust_stage = GovernedStage::kNone;
  uint64_t exhaust_round = 0;
  // Skew every `worker_delay_every`-th parallel work unit (0 disables):
  // sleep `worker_delay_us` microseconds, or yield the thread when the
  // delay is 0 (timed sleeps cost ~1ms of timer granularity on small
  // hosts; a yield perturbs lane interleaving nearly for free).
  // Exercises the determinism contract: arbitrary lane skew must never
  // change results.
  uint32_t worker_delay_us = 0;
  uint32_t worker_delay_every = 0;
  // Corrupt the next snapshot write: drop every byte from `truncate_at`
  // on, and/or XOR 0x01 into the byte at `flip_byte`. -1 disables.
  // Offsets are clamped into the written image, so any seed yields a
  // valid corruption.
  int64_t snapshot_truncate_at = -1;
  int64_t snapshot_flip_byte = -1;

  bool enabled() const {
    return exhaust_round != 0 || worker_delay_every != 0 ||
           snapshot_truncate_at >= 0 || snapshot_flip_byte >= 0;
  }

  // Parses a comma-separated spec, e.g.
  //   "exhaust=chase@3,delay-us=200,delay-every=2,snap-truncate=100,
  //    snap-flip=57"
  static Result<FaultPlan> Parse(std::string_view spec);
  std::string ToString() const;
};

// The process-global plan from GEREL_FAULT, or nullptr when the variable
// is unset or unparsable. Parsed once, thread-safe.
const FaultPlan* GlobalFaultPlan();

// Test hook: overrides GlobalFaultPlan() (nullptr restores the
// environment-derived plan). The pointee must outlive the override. Not
// thread-safe against concurrent GlobalFaultPlan callers mid-swap; tests
// install plans before spawning governed work.
void SetFaultPlanForTest(const FaultPlan* plan);

// Sleeps (or yields, when the plan's delay is 0µs) per `plan` when
// `unit` is a delay-selected work unit. Safe to call with a null plan
// (no-op). Called from worker lanes.
void MaybeInjectWorkerDelay(const FaultPlan* plan, uint64_t unit);

}  // namespace gerel

#endif  // GEREL_CORE_FAULT_H_
