#include "core/classify.h"

#include <algorithm>

#include "core/check.h"

namespace gerel {

namespace {

// Calls fn(pred, flat_index, term) for each position of `atom`.
template <typename Fn>
void ForEachPosition(const Atom& atom, Fn fn) {
  uint32_t pos = 0;
  for (Term t : atom.args) fn(atom.pred, pos++, t);
  for (Term t : atom.annotation) fn(atom.pred, pos++, t);
}

// Distinct argument variables over the positive body.
std::vector<Term> PositiveBodyArgVars(const Rule& rule) {
  std::vector<Term> out;
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    for (Term v : l.atom.ArgVars()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

// Frontier variables relevant for guard checks: head argument variables
// that occur in the body.
std::vector<Term> FrontierArgVars(const Rule& rule) {
  std::vector<Term> body_vars = rule.UVars();
  std::vector<Term> out;
  for (const Atom& a : rule.head) {
    for (Term v : a.ArgVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) !=
              body_vars.end() &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

// Whether some positive body atom's argument variables cover `vars`.
bool SomeAtomCovers(const Rule& rule, const std::vector<Term>& vars) {
  if (vars.empty()) return true;
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    std::vector<Term> avars = l.atom.ArgVars();
    bool covers = std::all_of(vars.begin(), vars.end(), [&avars](Term v) {
      return std::find(avars.begin(), avars.end(), v) != avars.end();
    });
    if (covers) return true;
  }
  return false;
}

std::vector<Term> Intersect(const std::vector<Term>& a,
                            const std::vector<Term>& b) {
  std::vector<Term> out;
  for (Term t : a) {
    if (std::find(b.begin(), b.end(), t) != b.end()) out.push_back(t);
  }
  return out;
}

}  // namespace

PositionSet AffectedPositions(const Theory& theory) {
  PositionSet affected;
  // (i) Positions of existential variables in heads.
  for (const Rule& rule : theory.rules()) {
    std::vector<Term> evars = rule.EVars();
    for (const Atom& a : rule.head) {
      ForEachPosition(a, [&](RelationId pred, uint32_t pos, Term t) {
        if (t.IsVariable() &&
            std::find(evars.begin(), evars.end(), t) != evars.end()) {
          affected.Insert(pred, pos);
        }
      });
    }
  }
  // (ii) Propagate universal variables whose body occurrences are all
  // affected.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : theory.rules()) {
      for (Term x : rule.UVars()) {
        bool all_affected = true;
        bool occurs = false;
        for (const Literal& l : rule.body) {
          if (l.negated) continue;
          ForEachPosition(l.atom, [&](RelationId pred, uint32_t pos, Term t) {
            if (t == x) {
              occurs = true;
              if (!affected.Contains(pred, pos)) all_affected = false;
            }
          });
        }
        if (!occurs || !all_affected) continue;
        for (const Atom& a : rule.head) {
          ForEachPosition(a, [&](RelationId pred, uint32_t pos, Term t) {
            if (t == x && !affected.Contains(pred, pos)) {
              affected.Insert(pred, pos);
              changed = true;
            }
          });
        }
      }
    }
  }
  return affected;
}

std::vector<Term> UnsafeVars(const Rule& rule, const PositionSet& affected) {
  std::vector<Term> out;
  for (Term x : rule.UVars()) {
    bool all_affected = true;
    bool occurs = false;
    for (const Literal& l : rule.body) {
      if (l.negated) continue;
      ForEachPosition(l.atom, [&](RelationId pred, uint32_t pos, Term t) {
        if (t == x) {
          occurs = true;
          if (!affected.Contains(pred, pos)) all_affected = false;
        }
      });
    }
    if (occurs && all_affected) out.push_back(x);
  }
  return out;
}

bool IsGuardedRule(const Rule& rule) {
  return SomeAtomCovers(rule, PositiveBodyArgVars(rule));
}

bool IsFrontierGuardedRule(const Rule& rule) {
  return SomeAtomCovers(rule, FrontierArgVars(rule));
}

bool IsWeaklyGuardedRule(const Rule& rule, const PositionSet& affected) {
  std::vector<Term> unsafe = UnsafeVars(rule, affected);
  return SomeAtomCovers(rule, Intersect(PositiveBodyArgVars(rule), unsafe));
}

bool IsWeaklyFrontierGuardedRule(const Rule& rule,
                                 const PositionSet& affected) {
  std::vector<Term> unsafe = UnsafeVars(rule, affected);
  return SomeAtomCovers(rule, Intersect(FrontierArgVars(rule), unsafe));
}

bool IsNearlyGuardedRule(const Rule& rule, const PositionSet& affected) {
  if (IsGuardedRule(rule)) return true;
  return UnsafeVars(rule, affected).empty() && rule.EVars().empty();
}

bool IsNearlyFrontierGuardedRule(const Rule& rule,
                                 const PositionSet& affected) {
  if (IsFrontierGuardedRule(rule)) return true;
  return UnsafeVars(rule, affected).empty() && rule.EVars().empty();
}

const Atom& FrontierGuard(const Rule& rule) {
  const Atom* g = FrontierGuardOrNull(rule);
  GEREL_CHECK(g != nullptr);
  return *g;
}

const Atom* FrontierGuardOrNull(const Rule& rule) {
  std::vector<Term> frontier = FrontierArgVars(rule);
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    std::vector<Term> avars = l.atom.ArgVars();
    bool covers =
        std::all_of(frontier.begin(), frontier.end(), [&avars](Term v) {
          return std::find(avars.begin(), avars.end(), v) != avars.end();
        });
    if (covers) return &l.atom;
  }
  return nullptr;
}

Classification Classify(const Theory& theory) {
  Classification c;
  PositionSet affected = AffectedPositions(theory);
  c.datalog = true;
  c.guarded = true;
  c.frontier_guarded = true;
  c.weakly_guarded = true;
  c.weakly_frontier_guarded = true;
  c.nearly_guarded = true;
  c.nearly_frontier_guarded = true;
  for (const Rule& rule : theory.rules()) {
    if (!rule.EVars().empty() || rule.HasNegation()) c.datalog = false;
    if (!IsGuardedRule(rule)) c.guarded = false;
    if (!IsFrontierGuardedRule(rule)) c.frontier_guarded = false;
    if (!IsWeaklyGuardedRule(rule, affected)) c.weakly_guarded = false;
    if (!IsWeaklyFrontierGuardedRule(rule, affected))
      c.weakly_frontier_guarded = false;
    if (!IsNearlyGuardedRule(rule, affected)) c.nearly_guarded = false;
    if (!IsNearlyFrontierGuardedRule(rule, affected))
      c.nearly_frontier_guarded = false;
  }
  return c;
}

namespace {

// Packed positive-body positions of `x`, args then annotations (the
// flattening used by the Ω sets of core/acyclicity.h).
std::vector<uint64_t> PositiveBodyPositionsOf(const Rule& rule, Term x) {
  std::vector<uint64_t> out;
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    uint32_t pos = 0;
    for (Term t : l.atom.args) {
      if (t == x) out.push_back(PackPosition(l.atom.pred, pos));
      ++pos;
    }
    for (Term t : l.atom.annotation) {
      if (t == x) out.push_back(PackPosition(l.atom.pred, pos));
      ++pos;
    }
  }
  return out;
}

// Whether `x` is attacked through Ω(f): it occurs in the positive body
// and every occurrence sits on an invadable position, so the chase can
// bind it to an f-null.
bool AttackedThrough(const Rule& rule, Term x,
                     const std::unordered_set<uint64_t>& omega) {
  std::vector<uint64_t> pos = PositiveBodyPositionsOf(rule, x);
  if (pos.empty()) return false;
  return std::all_of(pos.begin(), pos.end(),
                     [&omega](uint64_t p) { return omega.count(p) > 0; });
}

// Indices of positive body literals whose atom mentions `x`.
std::vector<size_t> PositiveAtomsWith(const Rule& rule, Term x) {
  std::vector<size_t> out;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& l = rule.body[i];
    if (l.negated) continue;
    std::vector<Term> all = l.atom.AllTerms();
    if (std::find(all.begin(), all.end(), x) != all.end()) out.push_back(i);
  }
  return out;
}

}  // namespace

bool IsLinearRule(const Rule& rule) {
  size_t positive = 0;
  for (const Literal& l : rule.body) {
    if (!l.negated) ++positive;
  }
  return positive <= 1;
}

bool IsFrontierOneRule(const Rule& rule) {
  return rule.FVars().size() <= 1;
}

bool IsJoinlessRule(const Rule& rule) {
  for (Term x : rule.UVars()) {
    if (PositiveAtomsWith(rule, x).size() > 1) return false;
  }
  return true;
}

bool IsDomainRestrictedRule(const Rule& rule) {
  // Distinct variables of the positive body.
  std::vector<Term> body_vars;
  for (const Atom& a : rule.PositiveBody()) {
    for (Term v : a.AllVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
          body_vars.end()) {
        body_vars.push_back(v);
      }
    }
  }
  for (const Atom& h : rule.head) {
    std::vector<Term> head_vars = h.AllVars();
    size_t present = 0;
    for (Term v : body_vars) {
      if (std::find(head_vars.begin(), head_vars.end(), v) !=
          head_vars.end()) {
        ++present;
      }
    }
    if (present != 0 && present != body_vars.size()) return false;
  }
  return true;
}

bool IsShyRule(const Rule& rule, const ExistentialDependencyGraph& graph) {
  // (i) No variable joining two distinct positive body atoms is
  // attacked: nulls never need to propagate through a join.
  for (Term x : rule.UVars()) {
    if (PositiveAtomsWith(rule, x).size() < 2) continue;
    for (const std::unordered_set<uint64_t>& omega : graph.omega) {
      if (AttackedThrough(rule, x, omega)) return false;
    }
  }
  // (ii) No two distinct frontier variables lacking a common body atom
  // are attacked by the same function: the head never equates two
  // independently-invented nulls.
  std::vector<Term> frontier = rule.FVars();
  for (size_t a = 0; a < frontier.size(); ++a) {
    for (size_t b = a + 1; b < frontier.size(); ++b) {
      std::vector<size_t> atoms_a = PositiveAtomsWith(rule, frontier[a]);
      std::vector<size_t> atoms_b = PositiveAtomsWith(rule, frontier[b]);
      bool share_atom = false;
      for (size_t i : atoms_a) {
        if (std::find(atoms_b.begin(), atoms_b.end(), i) != atoms_b.end()) {
          share_atom = true;
        }
      }
      if (share_atom) continue;
      for (const std::unordered_set<uint64_t>& omega : graph.omega) {
        if (AttackedThrough(rule, frontier[a], omega) &&
            AttackedThrough(rule, frontier[b], omega)) {
          return false;
        }
      }
    }
  }
  return true;
}

ExtendedClassification ClassifyExtended(const Theory& theory) {
  ExtendedClassification c;
  c.linear = true;
  c.frontier_one = true;
  c.joinless = true;
  c.domain_restricted = true;
  c.shy = true;
  ExistentialDependencyGraph graph = BuildExistentialDependencyGraph(theory);
  for (const Rule& rule : theory.rules()) {
    if (!IsLinearRule(rule)) c.linear = false;
    if (!IsFrontierOneRule(rule)) c.frontier_one = false;
    if (!IsJoinlessRule(rule)) c.joinless = false;
    if (!IsDomainRestrictedRule(rule)) c.domain_restricted = false;
    if (!IsShyRule(rule, graph)) c.shy = false;
  }
  return c;
}

namespace {

// Argument arity of each relation as used in `theory` (annotation-free
// atoms assumed; MakeProper runs before annotation transforms).
std::unordered_map<RelationId, uint32_t> RelationArities(
    const Theory& theory) {
  std::unordered_map<RelationId, uint32_t> out;
  auto note = [&out](const Atom& a) {
    GEREL_CHECK(a.annotation.empty());
    auto [it, inserted] = out.emplace(a.pred, a.args.size());
    if (!inserted) GEREL_CHECK(it->second == a.args.size());
  };
  for (const Rule& r : theory.rules()) {
    for (const Literal& l : r.body) note(l.atom);
    for (const Atom& a : r.head) note(a);
  }
  return out;
}

}  // namespace

Atom ProperReordering::Apply(const Atom& atom) const {
  auto it = permutation.find(atom.pred);
  if (it == permutation.end()) return atom;
  const std::vector<uint32_t>& perm = it->second;
  GEREL_CHECK(perm.size() == atom.args.size() && atom.annotation.empty());
  Atom out;
  out.pred = atom.pred;
  out.args.resize(atom.args.size());
  for (size_t i = 0; i < perm.size(); ++i) out.args[i] = atom.args[perm[i]];
  return out;
}

Atom ProperReordering::Invert(const Atom& atom) const {
  auto it = permutation.find(atom.pred);
  if (it == permutation.end()) return atom;
  const std::vector<uint32_t>& perm = it->second;
  GEREL_CHECK(perm.size() == atom.args.size() && atom.annotation.empty());
  Atom out;
  out.pred = atom.pred;
  out.args.resize(atom.args.size());
  for (size_t i = 0; i < perm.size(); ++i) out.args[perm[i]] = atom.args[i];
  return out;
}

Database ProperReordering::Apply(const Database& db) const {
  Database out;
  for (const Atom& a : db.atoms()) out.Insert(Apply(a));
  return out;
}

Database ProperReordering::Invert(const Database& db) const {
  Database out;
  for (const Atom& a : db.atoms()) out.Insert(Invert(a));
  return out;
}

ProperReordering MakeProper(const Theory& theory) {
  PositionSet affected = AffectedPositions(theory);
  ProperReordering out;
  for (const auto& [pred, arity] : RelationArities(theory)) {
    std::vector<uint32_t> perm;
    perm.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      if (affected.Contains(pred, i)) perm.push_back(i);
    }
    for (uint32_t i = 0; i < arity; ++i) {
      if (!affected.Contains(pred, i)) perm.push_back(i);
    }
    out.permutation.emplace(pred, std::move(perm));
  }
  for (const Rule& r : theory.rules()) {
    Rule nr;
    for (const Literal& l : r.body) {
      nr.body.emplace_back(out.Apply(l.atom), l.negated);
    }
    for (const Atom& a : r.head) nr.head.push_back(out.Apply(a));
    out.theory.AddRule(std::move(nr));
  }
  return out;
}

bool IsSafelyAnnotated(const Theory& theory) {
  for (const Rule& rule : theory.rules()) {
    // (i) annotation variables never occur as arguments in the rule.
    std::vector<Term> annotation_vars;
    std::vector<Term> argument_vars;
    auto scan = [&](const Atom& a) {
      for (Term t : a.annotation) {
        if (t.IsVariable()) annotation_vars.push_back(t);
      }
      for (Term t : a.args) {
        if (t.IsVariable()) argument_vars.push_back(t);
      }
    };
    for (const Literal& l : rule.body) scan(l.atom);
    for (const Atom& a : rule.head) scan(a);
    for (Term v : annotation_vars) {
      if (std::find(argument_vars.begin(), argument_vars.end(), v) !=
          argument_vars.end()) {
        return false;
      }
    }
    // (ii) head-annotation variables occur in some body annotation.
    std::vector<Term> body_annotation_vars;
    for (const Literal& l : rule.body) {
      for (Term t : l.atom.annotation) {
        if (t.IsVariable()) body_annotation_vars.push_back(t);
      }
    }
    for (const Atom& a : rule.head) {
      for (Term t : a.annotation) {
        if (t.IsVariable() &&
            std::find(body_annotation_vars.begin(),
                      body_annotation_vars.end(),
                      t) == body_annotation_vars.end()) {
          return false;
        }
      }
    }
  }
  return true;
}

bool IsProper(const Theory& theory) {
  PositionSet affected = AffectedPositions(theory);
  for (const auto& [pred, arity] : RelationArities(theory)) {
    bool seen_unaffected = false;
    for (uint32_t i = 0; i < arity; ++i) {
      if (!affected.Contains(pred, i)) {
        seen_unaffected = true;
      } else if (seen_unaffected) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace gerel
