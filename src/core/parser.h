// Text format for rules, theories, and databases.
//
// Grammar (Prolog-flavoured):
//
//   program   := { statement "." }
//   statement := rule | atom            // a bare ground atom is a fact
//   rule      := body? "->" head
//   body      := literal { "," literal }
//   literal   := ["not" | "!"] atom
//   head      := ["exists" var { "," var } "."] atom { "," atom }
//   atom      := relname [ "[" terms "]" ] [ "(" terms ")" ]
//   term      := Variable | constant | _null | 123
//
// Identifiers starting with an upper-case letter are variables, ones
// starting with "_" are labeled nulls (databases only), everything else
// (including numbers) is a constant. Comments run from "%" or "#" to end
// of line.
//
// Parse errors carry a "line L:C: message" header followed by a caret
// snippet of the offending source line (core/source_map.h).
#ifndef GEREL_CORE_PARSER_H_
#define GEREL_CORE_PARSER_H_

#include <string>
#include <string_view>
#include <utility>

#include "core/database.h"
#include "core/rule.h"
#include "core/source_map.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

// A parsed program: rules plus ground facts.
struct Program {
  Theory theory;
  Database database;
};

// Parses a full program (rules and facts may be interleaved).
Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols);

// As above, and records the byte span of every rule, fact, atom, and
// term into `source_map` (reset first; see core/source_map.h).
Result<Program> ParseProgram(std::string_view text, SymbolTable* symbols,
                             SourceMap* source_map);

// Parses rules only; facts ("→ R(c)" normal-form rules are still rules).
Result<Theory> ParseTheory(std::string_view text, SymbolTable* symbols);

// Parses ground facts only.
Result<Database> ParseDatabase(std::string_view text, SymbolTable* symbols);

// Parses a single rule (no trailing period required).
Result<Rule> ParseRule(std::string_view text, SymbolTable* symbols);

// Parses a single atom (no trailing period required).
Result<Atom> ParseAtom(std::string_view text, SymbolTable* symbols);

}  // namespace gerel

#endif  // GEREL_CORE_PARSER_H_
