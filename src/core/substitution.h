// Substitutions: partial maps from terms to terms, fixing constants.
// Used as homomorphisms (paper §2), selections (Def 7), and variable
// renamings (Fig 3, third rule).
#ifndef GEREL_CORE_SUBSTITUTION_H_
#define GEREL_CORE_SUBSTITUTION_H_

#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/rule.h"
#include "core/term.h"

namespace gerel {

// A partial map ∆v → (∆c ∪ ∆n ∪ ∆v). Constants and nulls are implicitly
// fixed (h(c) = c); only variables may be remapped.
class Substitution {
 public:
  Substitution() = default;

  // Binds `var` (a variable) to `value`. Overwrites existing bindings.
  void Bind(Term var, Term value);
  bool IsBound(Term var) const;
  // The image of `t`: the binding if t is a bound variable, t otherwise.
  Term Apply(Term t) const;

  Atom Apply(const Atom& atom) const;
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;
  Literal Apply(const Literal& lit) const;
  Rule Apply(const Rule& rule) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const std::unordered_map<Term, Term, TermHash>& map() const { return map_; }

  // Domain and range, in unspecified order (paper: dom(f), ran(f)).
  std::vector<Term> Domain() const;
  std::vector<Term> Range() const;

  friend bool operator==(const Substitution& a, const Substitution& b) {
    return a.map_ == b.map_;
  }

 private:
  std::unordered_map<Term, Term, TermHash> map_;
};

}  // namespace gerel

#endif  // GEREL_CORE_SUBSTITUTION_H_
