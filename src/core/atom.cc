#include "core/atom.h"

#include <algorithm>

namespace gerel {

namespace {

void AppendDistinctVars(const std::vector<Term>& terms,
                        std::vector<Term>* out) {
  for (Term t : terms) {
    if (t.IsVariable() && std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

}  // namespace

bool Atom::IsGroundOverConstants() const {
  auto all_const = [](const std::vector<Term>& ts) {
    return std::all_of(ts.begin(), ts.end(),
                       [](Term t) { return t.IsConstant(); });
  };
  return all_const(args) && all_const(annotation);
}

bool Atom::IsDatabaseAtom() const {
  auto no_var = [](const std::vector<Term>& ts) {
    return std::none_of(ts.begin(), ts.end(),
                        [](Term t) { return t.IsVariable(); });
  };
  return no_var(args) && no_var(annotation);
}

std::vector<Term> Atom::AllTerms() const {
  std::vector<Term> out = args;
  out.insert(out.end(), annotation.begin(), annotation.end());
  return out;
}

std::vector<Term> Atom::ArgVars() const {
  std::vector<Term> out;
  AppendDistinctVars(args, &out);
  return out;
}

std::vector<Term> Atom::AllVars() const {
  std::vector<Term> out;
  AppendDistinctVars(args, &out);
  AppendDistinctVars(annotation, &out);
  return out;
}

bool operator<(const Atom& a, const Atom& b) {
  if (a.pred != b.pred) return a.pred < b.pred;
  if (a.args != b.args) return a.args < b.args;
  return a.annotation < b.annotation;
}

size_t AtomHash::operator()(const Atom& a) const {
  size_t h = static_cast<size_t>(a.pred) * 0x9E3779B97F4A7C15ull;
  auto mix = [&h](Term t) {
    h ^= static_cast<size_t>(t.bits()) + 0x9E3779B97F4A7C15ull + (h << 6) +
         (h >> 2);
  };
  for (Term t : a.args) mix(t);
  h ^= 0xABCDEF;  // Separator between args and annotation.
  for (Term t : a.annotation) mix(t);
  return h;
}

}  // namespace gerel
