// Source locations for parsed programs.
//
// The parser works over a flat byte buffer; a SourceMap relates the
// parsed structure back to that buffer so diagnostics can say *where*.
// Every rule, fact, atom, and term of a program gets a half-open byte
// span [begin, end); spans resolve to 1-based line:column pairs and
// render as caret snippets:
//
//   e(X, Y), t(Y, Z) -> t(X, Z).
//            ^~~~~~~
//
// The map owns a copy of the source text, so it stays valid after the
// original buffer is gone. Spans are recorded by ParseProgram's
// three-argument overload (core/parser.h); everything here is plain
// data plus offset arithmetic.
#ifndef GEREL_CORE_SOURCE_MAP_H_
#define GEREL_CORE_SOURCE_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/term.h"

namespace gerel {

// A half-open byte range of the source buffer.
struct Span {
  uint32_t begin = 0;
  uint32_t end = 0;

  bool empty() const { return end <= begin; }
  // The smallest span covering both (empty spans are ignored).
  static Span Join(Span a, Span b);
};

// 1-based line and column (columns count bytes, tabs are one column).
struct LineCol {
  uint32_t line = 1;
  uint32_t col = 1;
};

// Spans of one atom: the whole atom plus each argument/annotation term.
struct AtomSpans {
  Span span;
  std::vector<Span> args;
  std::vector<Span> annotation;
};

// Spans of one rule, aligned index-for-index with Rule::body/head.
struct RuleSpans {
  Span span;
  std::vector<AtomSpans> body;
  std::vector<AtomSpans> head;
  // Variables declared in the "exists X, Y." prefix, in declaration
  // order. The parser drops unused declarations from evars(σ) (EVars()
  // recomputes from occurrences), so this list is the only record of
  // them — the GR060 analyzer reads it.
  std::vector<std::pair<Term, Span>> declared_evars;
};

// --- Standalone offset helpers (usable without a SourceMap) -------------

// Resolves a byte offset to 1-based line:col. Offsets past the end
// resolve to one past the last character.
LineCol OffsetToLineCol(std::string_view text, uint32_t offset);

// Two-line caret snippet for `span`, clamped to the line containing its
// start: the source line, then "^~~~" markers, both indented two spaces.
// Returns "" for spans outside the text.
std::string CaretSnippet(std::string_view text, Span span);

// --- The map ------------------------------------------------------------

class SourceMap {
 public:
  SourceMap() = default;

  // Stores a copy of the source and resets all recorded spans.
  void Reset(std::string_view text);

  const std::string& text() const { return text_; }
  LineCol Resolve(uint32_t offset) const {
    return OffsetToLineCol(text_, offset);
  }
  LineCol Resolve(Span span) const { return Resolve(span.begin); }
  std::string Snippet(Span span) const { return CaretSnippet(text_, span); }

  // Parallel to Program::theory.rules() / the insertion order of
  // Program::database (duplicate facts keep their first span).
  std::vector<RuleSpans> rules;
  std::vector<AtomSpans> facts;

 private:
  std::string text_;
};

}  // namespace gerel

#endif  // GEREL_CORE_SOURCE_MAP_H_
