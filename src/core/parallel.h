// A small persistent worker pool for intra-round parallelism.
//
// Round-based fixpoint engines (semi-naive Datalog, the piece-parallel
// chase, parallel saturation) share a natural barrier per round: every
// task matches against the same immutable snapshot, and derived results
// only become visible at the round boundary. The pool runs one task per
// unit of work; the caller's thread participates, so a pool built for
// `num_threads` spawns num_threads - 1 workers.
#ifndef GEREL_CORE_PARALLEL_H_
#define GEREL_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gerel {

class WorkerPool {
 public:
  // A pool of `num_threads` total lanes (including the calling thread);
  // values <= 1 spawn no workers and Run degenerates to a serial loop.
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Runs fn(i) for every i in [0, num_tasks), distributed over the pool
  // plus the calling thread; returns when all calls finished. `fn` must
  // be safe to invoke concurrently for distinct i. Not reentrant.
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn);

  // Like Run, but fn also receives the executing lane index in
  // [0, num_threads()); the calling thread is lane 0. Each lane runs at
  // most one task at a time, so per-lane scratch needs no locking.
  void RunIndexed(size_t num_tasks,
                  const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size() + 1; }

 private:
  void WorkerLoop(size_t lane);
  // Claims tasks off next_ until the batch is exhausted.
  void Drain(size_t lane);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Current batch (task index, lane index).
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  size_t num_tasks_ = 0;
  std::atomic<size_t> next_{0};
  size_t active_ = 0;        // Workers still draining the current batch.
  uint64_t generation_ = 0;  // Bumped per Run to wake the workers.
  bool stop_ = false;
};

}  // namespace gerel

#endif  // GEREL_CORE_PARALLEL_H_
