// Homomorphism enumeration: mapping atom conjunctions into databases
// (chase triggers, Datalog rule evaluation) or into small atom sets
// (the saturation calculus of §6, which matches rule bodies into rule
// heads).
#ifndef GEREL_CORE_HOMOMORPHISM_H_
#define GEREL_CORE_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/substitution.h"

namespace gerel {

// Visitor for enumerated homomorphisms; return false to stop enumeration.
using HomomorphismVisitor = std::function<bool(const Substitution&)>;

// Enumerates homomorphisms h extending `initial` with h(pattern) ⊆ db.
// Pattern atoms may contain variables, constants, and nulls; constants and
// nulls must match database terms exactly. Returns false iff the visitor
// stopped the enumeration early.
bool ForEachHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                         const Substitution& initial,
                         const HomomorphismVisitor& visitor);

// Convenience: does any homomorphism exist?
bool HasHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                     const Substitution& initial = Substitution());

// Enumerates homomorphisms h extending `initial` with h(pattern) ⊆ target,
// where `target` is a plain atom set (its variables act as constants:
// pattern variables may map onto them, but they are never remapped).
bool ForEachEmbedding(const std::vector<Atom>& pattern,
                      const std::vector<Atom>& target,
                      const Substitution& initial,
                      const HomomorphismVisitor& visitor);

// Whether there is a homomorphism from the atoms of `a` into the atoms of
// `b` (used for homomorphic-equivalence checks of chase results).
bool DatabaseMapsInto(const Database& a, const Database& b);
bool HomomorphicallyEquivalent(const Database& a, const Database& b);

}  // namespace gerel

#endif  // GEREL_CORE_HOMOMORPHISM_H_
