// Internal invariant checking for gerel.
//
// GEREL_CHECK aborts the process with a diagnostic when an invariant is
// violated. It is intended for programmer errors (broken invariants), not
// for recoverable conditions; fallible user-facing APIs return Status or
// Result<T> from status.h instead.
#ifndef GEREL_CORE_CHECK_H_
#define GEREL_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gerel::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "GEREL_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace gerel::internal

#define GEREL_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::gerel::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                              \
  } while (false)

#endif  // GEREL_CORE_CHECK_H_
