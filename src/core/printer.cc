#include "core/printer.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace gerel {

namespace {

// A constant name the lexer reads back as a single identifier token
// denoting a constant: lower-case or digit start, then identifier
// characters (including mid-name ' and #, as in fresh "base#k" names).
bool PlainConstantName(const std::string& name) {
  if (name.empty()) return false;
  unsigned char c0 = static_cast<unsigned char>(name[0]);
  if (!std::islower(c0) && !std::isdigit(c0)) return false;
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '\'' && c != '#') return false;
  }
  return true;
}

}  // namespace

std::string ToString(Term t, const SymbolTable& symbols) {
  std::string name = symbols.TermName(t);
  if (t.IsConstant() && !PlainConstantName(name)) {
    std::string quoted = "'";
    for (char c : name) {
      if (c == '\\' || c == '\'') quoted += '\\';
      quoted += c;
    }
    quoted += "'";
    return quoted;
  }
  return name;
}

std::string ToString(const Atom& atom, const SymbolTable& symbols) {
  std::string out = symbols.RelationName(atom.pred);
  if (!atom.annotation.empty()) {
    out += "[";
    for (size_t i = 0; i < atom.annotation.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToString(atom.annotation[i], symbols);
    }
    out += "]";
  }
  if (!atom.args.empty()) {
    out += "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToString(atom.args[i], symbols);
    }
    out += ")";
  }
  return out;
}

std::string ToString(const Literal& lit, const SymbolTable& symbols) {
  std::string out = lit.negated ? "not " : "";
  return out + ToString(lit.atom, symbols);
}

std::string ToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(rule.body[i], symbols);
  }
  if (!rule.body.empty()) out += " ";
  out += "->";
  std::vector<Term> evars = rule.EVars();
  if (!evars.empty()) {
    out += " exists ";
    for (size_t i = 0; i < evars.size(); ++i) {
      if (i > 0) out += ", ";
      out += symbols.TermName(evars[i]);
    }
    out += ".";
  }
  for (size_t i = 0; i < rule.head.size(); ++i) {
    out += (i == 0 ? " " : ", ");
    out += ToString(rule.head[i], symbols);
  }
  return out;
}

std::string ToString(const Theory& theory, const SymbolTable& symbols) {
  std::string out;
  for (const Rule& r : theory.rules()) {
    out += ToString(r, symbols);
    out += ".\n";
  }
  return out;
}

std::string ToString(const Database& db, const SymbolTable& symbols) {
  std::vector<std::string> lines;
  lines.reserve(db.size());
  for (const Atom& a : db.atoms()) lines.push_back(ToString(a, symbols) + ".");
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace gerel
