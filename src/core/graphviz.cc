#include "core/graphviz.h"

#include <set>
#include <utility>

namespace gerel {

std::string PredicateGraphDot(const Theory& theory,
                              const SymbolTable& symbols) {
  std::string out = "digraph predicates {\n  rankdir=LR;\n";
  std::set<std::pair<std::string, std::string>> solid, dashed;
  for (const Rule& rule : theory.rules()) {
    bool existential = !rule.EVars().empty();
    for (const Literal& l : rule.body) {
      for (const Atom& h : rule.head) {
        auto edge = std::make_pair(symbols.RelationName(l.atom.pred),
                                   symbols.RelationName(h.pred));
        (existential ? dashed : solid).insert(edge);
      }
    }
    // Fact rules: head only.
    if (rule.body.empty()) {
      for (const Atom& h : rule.head) {
        out += "  \"" + symbols.RelationName(h.pred) + "\";\n";
      }
    }
  }
  for (const auto& [from, to] : solid) {
    out += "  \"" + from + "\" -> \"" + to + "\";\n";
  }
  for (const auto& [from, to] : dashed) {
    out += "  \"" + from + "\" -> \"" + to + "\" [style=dashed];\n";
  }
  out += "}\n";
  return out;
}

std::string PositionGraphDot(const Theory& theory,
                             const SymbolTable& symbols) {
  auto position_name = [&symbols](RelationId pred, size_t pos) {
    return symbols.RelationName(pred) + "." + std::to_string(pos + 1);
  };
  auto positions_of = [&](Term var, const std::vector<Atom>& atoms) {
    std::vector<std::string> out;
    for (const Atom& a : atoms) {
      std::vector<Term> all = a.AllTerms();
      for (size_t p = 0; p < all.size(); ++p) {
        if (all[p] == var) out.push_back(position_name(a.pred, p));
      }
    }
    return out;
  };
  std::string out = "digraph positions {\n  rankdir=LR;\n";
  std::set<std::pair<std::string, std::string>> regular, special;
  for (const Rule& rule : theory.rules()) {
    std::vector<Atom> body = rule.PositiveBody();
    std::vector<Term> evars = rule.EVars();
    for (Term x : rule.FVars()) {
      for (const std::string& p : positions_of(x, body)) {
        for (const std::string& q : positions_of(x, rule.head)) {
          regular.emplace(p, q);
        }
        for (Term y : evars) {
          for (const std::string& q : positions_of(y, rule.head)) {
            special.emplace(p, q);
          }
        }
      }
    }
  }
  for (const auto& [p, q] : regular) {
    out += "  \"" + p + "\" -> \"" + q + "\";\n";
  }
  for (const auto& [p, q] : special) {
    out += "  \"" + p + "\" -> \"" + q +
           "\" [color=red, style=bold, label=\"*\"];\n";
  }
  out += "}\n";
  return out;
}

std::string ExistentialGraphDot(const ExistentialDependencyGraph& graph,
                                const SymbolTable& symbols,
                                const std::vector<size_t>& highlight) {
  std::set<size_t> hot_nodes(highlight.begin(), highlight.end());
  std::set<std::pair<size_t, size_t>> hot_edges;
  for (size_t i = 0; i + 1 < highlight.size(); ++i) {
    hot_edges.emplace(highlight[i], highlight[i + 1]);
  }
  std::string out = "digraph skolem {\n  rankdir=LR;\n";
  for (size_t i = 0; i < graph.functions.size(); ++i) {
    out += "  \"" + SkolemFunctionName(graph.functions[i], symbols) + "\"";
    if (hot_nodes.count(i) > 0) out += " [color=red, style=bold]";
    out += ";\n";
  }
  for (size_t i = 0; i < graph.functions.size(); ++i) {
    for (size_t j : graph.edges[i]) {
      out += "  \"" + SkolemFunctionName(graph.functions[i], symbols) +
             "\" -> \"" + SkolemFunctionName(graph.functions[j], symbols) +
             "\"";
      if (hot_edges.count({i, j}) > 0) out += " [color=red, style=bold]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace gerel
