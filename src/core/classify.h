// Guardedness classification (paper §3).
//
// Implements affected positions ap(Σ) (Def 2), unsafe variables, and the
// seven language classes of Figure 1: Datalog, guarded, frontier-guarded,
// weakly guarded, weakly frontier-guarded, nearly guarded, and nearly
// frontier-guarded.
//
// Positions are flattened over argument positions first, then annotation
// positions. Guard/frontier checks consider *argument* variables only:
// annotation variables never need guarding (paper, "safely annotated"
// theories — annotation terms behave as part of the relation name). For
// unannotated theories this coincides exactly with the paper's
// definitions. For stratified theories, ap and the guard checks ignore
// negative literals (paper §8: weak guardedness of Σ is defined via the
// negation-free Σ').
#ifndef GEREL_CORE_CLASSIFY_H_
#define GEREL_CORE_CLASSIFY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/acyclicity.h"
#include "core/database.h"
#include "core/rule.h"
#include "core/theory.h"

namespace gerel {

// A relation position (R, i), packed.
struct PositionSet {
 public:
  void Insert(RelationId pred, uint32_t index) { set_.insert(Key(pred, index)); }
  bool Contains(RelationId pred, uint32_t index) const {
    return set_.count(Key(pred, index)) > 0;
  }
  size_t size() const { return set_.size(); }

 private:
  static uint64_t Key(RelationId pred, uint32_t index) {
    return (static_cast<uint64_t>(pred) << 32) | index;
  }
  std::unordered_set<uint64_t> set_;
};

// Computes the affected positions ap(Σ) (Def 2): the least set containing
// all head positions of existential variables, closed under propagation of
// all-affected body variables into their head positions.
PositionSet AffectedPositions(const Theory& theory);

// unsafe(σ, Σ) ∩ uvars(σ): the universal variables of `rule` all of whose
// positive-body occurrences are affected (they may be bound to labeled
// nulls during the chase).
std::vector<Term> UnsafeVars(const Rule& rule, const PositionSet& affected);

// --- Per-rule class membership ------------------------------------------

// Guarded: some positive body atom contains all universal variables.
bool IsGuardedRule(const Rule& rule);
// Frontier-guarded: some positive body atom contains all frontier vars.
bool IsFrontierGuardedRule(const Rule& rule);
// Weakly guarded in Σ: some positive body atom contains all unsafe
// universal variables.
bool IsWeaklyGuardedRule(const Rule& rule, const PositionSet& affected);
// Weakly frontier-guarded in Σ: some positive body atom contains all
// unsafe frontier variables.
bool IsWeaklyFrontierGuardedRule(const Rule& rule,
                                 const PositionSet& affected);
// Nearly guarded in Σ (Def 3): guarded, or no unsafe vars and no evars.
bool IsNearlyGuardedRule(const Rule& rule, const PositionSet& affected);
// Nearly frontier-guarded in Σ (Def 3).
bool IsNearlyFrontierGuardedRule(const Rule& rule,
                                 const PositionSet& affected);

// The fixed frontier guard fg(σ) (Def 1): the first positive body atom
// containing all frontier variables. CHECK-fails if none exists.
const Atom& FrontierGuard(const Rule& rule);
// As above but returns nullptr if no frontier guard exists.
const Atom* FrontierGuardOrNull(const Rule& rule);

// --- Theory-level classification ----------------------------------------

struct Classification {
  bool datalog = false;
  bool guarded = false;
  bool frontier_guarded = false;
  bool weakly_guarded = false;
  bool weakly_frontier_guarded = false;
  bool nearly_guarded = false;
  bool nearly_frontier_guarded = false;
};

Classification Classify(const Theory& theory);

// --- Extended lattice (beyond Fig. 1) -----------------------------------
//
// Cheap syntactic classes from the termination literature (nemo's
// rule_properties list; Zhang/Zhang/You, "Existential Rule Languages
// with Finite Chase"). They refine the planner's picture: linear and
// joinless bound join width, frontier-one bounds null fan-in, shy
// guarantees parsimonious-chase query answering.

// Linear: at most one positive body atom (implies guarded).
bool IsLinearRule(const Rule& rule);
// Frontier-one: at most one frontier variable.
bool IsFrontierOneRule(const Rule& rule);
// Joinless: no variable occurs in two distinct positive body atoms
// (repeated occurrences inside one atom are fine).
bool IsJoinlessRule(const Rule& rule);
// Domain-restricted: every head atom contains all universal body
// variables or none of them.
bool IsDomainRestrictedRule(const Rule& rule);
// Shy (Leone et al.): a universal variable x is *attacked* by a Skolem
// function f when every positive-body occurrence of x lies in Ω(f) —
// i.e. x can be bound to an f-null. A rule is shy iff (i) no variable
// occurring in two distinct positive body atoms is attacked, and (ii) no
// two distinct frontier variables lacking a common body atom are
// attacked by the same function. `graph` must come from
// BuildExistentialDependencyGraph over the *whole* theory.
bool IsShyRule(const Rule& rule, const ExistentialDependencyGraph& graph);

struct ExtendedClassification {
  bool linear = false;
  bool frontier_one = false;
  bool joinless = false;
  bool domain_restricted = false;
  bool shy = false;
};

ExtendedClassification ClassifyExtended(const Theory& theory);

// --- Proper theories (Def 16) -------------------------------------------

// A position permutation per relation: new_args[i] = old_args[perm[i]].
struct ProperReordering {
  Theory theory;
  std::unordered_map<RelationId, std::vector<uint32_t>> permutation;

  // Applies / inverts the reordering on databases.
  Database Apply(const Database& db) const;
  Database Invert(const Database& db) const;
  Atom Apply(const Atom& atom) const;
  Atom Invert(const Atom& atom) const;
};

// Reorders relation positions so every relation has its affected positions
// first (Def 16). The result is proper; ap membership is preserved
// position-wise along the permutation.
ProperReordering MakeProper(const Theory& theory);

// Whether every relation of `theory` has its affected positions forming a
// prefix (Def 16).
bool IsProper(const Theory& theory);

// Whether `theory` is safely annotated (paper §2, "Relation name
// annotations"): (i) no annotation variable occurs as an argument in the
// same rule, and (ii) every head-annotation variable occurs in some
// body-atom annotation.
bool IsSafelyAnnotated(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_CORE_CLASSIFY_H_
