#include "core/theory.h"

#include <algorithm>

namespace gerel {

std::vector<RelationId> Theory::Relations() const {
  std::vector<RelationId> out;
  auto add = [&out](RelationId id) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  };
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) add(l.atom.pred);
    for (const Atom& a : r.head) add(a.pred);
  }
  return out;
}

size_t Theory::MaxArity() const {
  size_t m = 0;
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) m = std::max(m, l.atom.args.size());
    for (const Atom& a : r.head) m = std::max(m, a.args.size());
  }
  return m;
}

size_t Theory::MaxFullArity() const {
  size_t m = 0;
  for (const Rule& r : rules_) {
    for (const Literal& l : r.body) m = std::max(m, l.atom.arity());
    for (const Atom& a : r.head) m = std::max(m, a.arity());
  }
  return m;
}

std::vector<Term> Theory::Constants() const {
  std::vector<Term> out;
  for (const Rule& r : rules_) {
    for (Term c : r.Constants()) {
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
  }
  return out;
}

size_t Theory::MaxVarsPerRule() const {
  size_t m = 0;
  for (const Rule& r : rules_) m = std::max(m, r.Vars().size());
  return m;
}

bool Theory::HasNegation() const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [](const Rule& r) { return r.HasNegation(); });
}

Status Theory::Validate(const SymbolTable& symbols) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    Status s = rules_[i].Validate(symbols);
    if (!s.ok()) {
      return Status::Error("rule " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::Ok();
}

}  // namespace gerel
