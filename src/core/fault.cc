#include "core/fault.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace gerel {
namespace {

struct StageName {
  GovernedStage stage;
  const char* name;
};

constexpr StageName kStageNames[] = {
    {GovernedStage::kNone, "none"},
    {GovernedStage::kChase, "chase"},
    {GovernedStage::kRewrite, "rewrite"},
    {GovernedStage::kGrounding, "grounding"},
    {GovernedStage::kSaturation, "saturation"},
    {GovernedStage::kDatalog, "datalog"},
    {GovernedStage::kQuery, "query"},
    {GovernedStage::kSnapshot, "snapshot"},
};

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const char* GovernedStageName(GovernedStage stage) {
  for (const auto& entry : kStageNames) {
    if (entry.stage == stage) return entry.name;
  }
  return "unknown";
}

bool ParseGovernedStage(std::string_view name, GovernedStage* out) {
  for (const auto& entry : kStageNames) {
    if (name == entry.name) {
      *out = entry.stage;
      return true;
    }
  }
  return false;
}

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::Error("fault plan item '" + std::string(item) +
                           "' is not key=value");
    }
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    uint64_t number = 0;
    if (key == "exhaust") {
      // stage@round, e.g. exhaust=chase@3.
      size_t at = value.find('@');
      std::string_view stage_name = value.substr(0, at);
      if (!ParseGovernedStage(stage_name, &plan.exhaust_stage)) {
        return Status::Error("fault plan: unknown stage '" +
                             std::string(stage_name) + "'");
      }
      if (at == std::string_view::npos) {
        plan.exhaust_round = 1;
      } else if (!ParseU64(value.substr(at + 1), &plan.exhaust_round) ||
                 plan.exhaust_round == 0) {
        return Status::Error("fault plan: bad round in '" + std::string(item) +
                             "'");
      }
    } else if (key == "delay-us") {
      if (!ParseU64(value, &number)) {
        return Status::Error("fault plan: bad delay-us value");
      }
      plan.worker_delay_us = static_cast<uint32_t>(number);
      if (plan.worker_delay_every == 0) plan.worker_delay_every = 1;
    } else if (key == "delay-every") {
      if (!ParseU64(value, &number) || number == 0) {
        return Status::Error("fault plan: bad delay-every value");
      }
      plan.worker_delay_every = static_cast<uint32_t>(number);
    } else if (key == "snap-truncate") {
      if (!ParseU64(value, &number)) {
        return Status::Error("fault plan: bad snap-truncate value");
      }
      plan.snapshot_truncate_at = static_cast<int64_t>(number);
    } else if (key == "snap-flip") {
      if (!ParseU64(value, &number)) {
        return Status::Error("fault plan: bad snap-flip value");
      }
      plan.snapshot_flip_byte = static_cast<int64_t>(number);
    } else {
      return Status::Error("fault plan: unknown key '" + std::string(key) +
                           "'");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  auto append = [&out](const std::string& item) {
    if (!out.empty()) out += ',';
    out += item;
  };
  if (exhaust_round != 0) {
    append(std::string("exhaust=") + GovernedStageName(exhaust_stage) + "@" +
           std::to_string(exhaust_round));
  }
  if (worker_delay_every != 0) {
    append("delay-us=" + std::to_string(worker_delay_us));
    append("delay-every=" + std::to_string(worker_delay_every));
  }
  if (snapshot_truncate_at >= 0) {
    append("snap-truncate=" + std::to_string(snapshot_truncate_at));
  }
  if (snapshot_flip_byte >= 0) {
    append("snap-flip=" + std::to_string(snapshot_flip_byte));
  }
  return out;
}

namespace {

const FaultPlan* EnvFaultPlan() {
  static const FaultPlan* plan = []() -> const FaultPlan* {
    const char* spec = std::getenv("GEREL_FAULT");
    if (spec == nullptr || spec[0] == '\0') return nullptr;
    Result<FaultPlan> parsed = FaultPlan::Parse(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "gerel: ignoring GEREL_FAULT: %s\n",
                   parsed.status().message().c_str());
      return nullptr;
    }
    static FaultPlan storage;
    storage = parsed.value();
    return &storage;
  }();
  return plan;
}

std::atomic<const FaultPlan*> g_test_override{nullptr};
std::atomic<bool> g_test_override_set{false};

}  // namespace

const FaultPlan* GlobalFaultPlan() {
  if (g_test_override_set.load(std::memory_order_acquire)) {
    return g_test_override.load(std::memory_order_acquire);
  }
  return EnvFaultPlan();
}

void SetFaultPlanForTest(const FaultPlan* plan) {
  if (plan == nullptr) {
    g_test_override_set.store(false, std::memory_order_release);
    g_test_override.store(nullptr, std::memory_order_release);
  } else {
    g_test_override.store(plan, std::memory_order_release);
    g_test_override_set.store(true, std::memory_order_release);
  }
}

void MaybeInjectWorkerDelay(const FaultPlan* plan, uint64_t unit) {
  if (plan == nullptr || plan->worker_delay_every == 0) return;
  if (unit % plan->worker_delay_every != 0) return;
  if (plan->worker_delay_us == 0) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(plan->worker_delay_us));
}

}  // namespace gerel
