#include "core/acyclicity.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gerel {

namespace {

// Flattened positions of a variable in a set of atoms.
std::vector<uint64_t> PositionsOf(Term var, const std::vector<Atom>& atoms) {
  std::vector<uint64_t> out;
  for (const Atom& a : atoms) {
    uint32_t pos = 0;
    for (Term t : a.args) {
      if (t == var) out.push_back(PackPosition(a.pred, pos));
      ++pos;
    }
    for (Term t : a.annotation) {
      if (t == var) out.push_back(PackPosition(a.pred, pos));
      ++pos;
    }
  }
  return out;
}

// Reachability u →* v in the edge map.
bool Reaches(uint64_t from, uint64_t to,
             const std::unordered_map<uint64_t, std::vector<uint64_t>>&
                 edges) {
  std::unordered_set<uint64_t> visited;
  std::deque<uint64_t> frontier = {from};
  while (!frontier.empty()) {
    uint64_t u = frontier.front();
    frontier.pop_front();
    if (u == to) return true;
    if (!visited.insert(u).second) continue;
    auto it = edges.find(u);
    if (it == edges.end()) continue;
    for (uint64_t v : it->second) frontier.push_back(v);
  }
  return false;
}

}  // namespace

std::string SkolemFunctionName(const SkolemFunction& f,
                               const SymbolTable& symbols) {
  return "r" + std::to_string(f.rule) + "." + symbols.VariableName(f.var);
}

bool IsWeaklyAcyclic(const Theory& theory) {
  // Position dependency graph (Fagin et al., Def 3.7): edges originate
  // from the body positions of *frontier* variables.
  std::unordered_map<uint64_t, std::vector<uint64_t>> edges;
  std::vector<std::pair<uint64_t, uint64_t>> special;
  for (const Rule& rule : theory.rules()) {
    std::vector<Atom> body = rule.PositiveBody();
    std::vector<Term> evars = rule.EVars();
    for (Term x : rule.FVars()) {
      std::vector<uint64_t> body_pos = PositionsOf(x, body);
      std::vector<uint64_t> head_pos = PositionsOf(x, rule.head);
      for (uint64_t p : body_pos) {
        for (uint64_t q : head_pos) edges[p].push_back(q);
        for (Term y : evars) {
          for (uint64_t q : PositionsOf(y, rule.head)) {
            edges[p].push_back(q);  // Special edges are edges too.
            special.emplace_back(p, q);
          }
        }
      }
    }
  }
  for (const auto& [p, q] : special) {
    if (Reaches(q, p, edges)) return false;  // Cycle through p ⇒ q.
  }
  return true;
}

ExistentialDependencyGraph BuildExistentialDependencyGraph(
    const Theory& theory) {
  // Ω(y): positions reachable by nulls invented for the existential
  // variable y — y's head positions, closed under the Def 2-style
  // propagation ("if all body positions of a universal variable are in
  // Ω(y), its head positions join Ω(y)").
  ExistentialDependencyGraph graph;
  for (size_t ri = 0; ri < theory.rules().size(); ++ri) {
    for (Term y : theory.rules()[ri].EVars()) {
      SkolemFunction f;
      f.rule = ri;
      f.var = y;
      std::unordered_set<uint64_t> omega;
      for (uint64_t q : PositionsOf(y, theory.rules()[ri].head)) {
        omega.insert(q);
      }
      graph.functions.push_back(f);
      graph.omega.push_back(std::move(omega));
    }
  }
  for (std::unordered_set<uint64_t>& omega : graph.omega) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : theory.rules()) {
        std::vector<Atom> body = rule.PositiveBody();
        for (Term x : rule.UVars()) {
          std::vector<uint64_t> body_pos = PositionsOf(x, body);
          if (body_pos.empty()) continue;
          bool all = std::all_of(
              body_pos.begin(), body_pos.end(),
              [&omega](uint64_t p) { return omega.count(p) > 0; });
          if (!all) continue;
          for (uint64_t q : PositionsOf(x, rule.head)) {
            if (omega.insert(q).second) changed = true;
          }
        }
      }
    }
  }
  // Dependency edges: y → y′ when a frontier variable of y′'s rule can
  // be bound entirely inside Ω(y). Cycle ⇒ not jointly acyclic.
  size_t n = graph.functions.size();
  graph.edges.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const Rule& rule_j = theory.rules()[graph.functions[j].rule];
      std::vector<Atom> body = rule_j.PositiveBody();
      for (Term x : rule_j.FVars()) {
        std::vector<uint64_t> body_pos = PositionsOf(x, body);
        if (body_pos.empty()) continue;
        bool all = std::all_of(body_pos.begin(), body_pos.end(),
                               [&](uint64_t p) {
                                 return graph.omega[i].count(p) > 0;
                               });
        if (all) {
          graph.edges[i].push_back(j);
          break;
        }
      }
    }
  }
  return graph;
}

bool ExistentialTopoOrder(const ExistentialDependencyGraph& graph,
                          std::vector<size_t>* order,
                          std::vector<size_t>* cycle) {
  size_t n = graph.functions.size();
  if (order != nullptr) order->clear();
  if (cycle != nullptr) cycle->clear();
  // Cycle detection (DFS, three colors). The work stack holds the
  // current path, so a back edge yields the witness cycle directly.
  std::vector<int> color(n, 0);
  std::vector<size_t> postorder;
  postorder.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    std::vector<std::pair<size_t, size_t>> work = {{s, 0}};
    color[s] = 1;
    while (!work.empty()) {
      auto& [u, next] = work.back();
      if (next < graph.edges[u].size()) {
        size_t v = graph.edges[u][next++];
        if (color[v] == 1) {
          // Back edge u → v: the cycle is the work-stack slice from v
          // to u, closed by repeating v.
          if (cycle != nullptr) {
            size_t at = 0;
            while (work[at].first != v) ++at;
            for (; at < work.size(); ++at) cycle->push_back(work[at].first);
            cycle->push_back(v);
          }
          return false;
        }
        if (color[v] == 0) {
          color[v] = 1;
          work.emplace_back(v, 0);
        }
      } else {
        color[u] = 2;
        postorder.push_back(u);
        work.pop_back();
      }
    }
  }
  if (order != nullptr) {
    // Reverse postorder: every edge u → v places u before v, so a
    // function precedes everything built on top of its nulls.
    order->assign(postorder.rbegin(), postorder.rend());
  }
  return true;
}

bool IsJointlyAcyclic(const Theory& theory) {
  ExistentialDependencyGraph graph = BuildExistentialDependencyGraph(theory);
  return ExistentialTopoOrder(graph, nullptr, nullptr);
}

}  // namespace gerel
