// Interning of relation, constant, and variable names, and generation of
// fresh symbols (labeled nulls, auxiliary relations, fresh variables).
//
// A SymbolTable is shared by every theory/database that must agree on
// symbol identity. It also records the arity of each relation (counting
// both argument and annotation positions, see Atom) and checks consistency.
#ifndef GEREL_CORE_SYMBOL_TABLE_H_
#define GEREL_CORE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/term.h"

namespace gerel {

using RelationId = uint32_t;

// Interns names and hands out fresh ids. Not thread-safe.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  // --- Relations ---------------------------------------------------------

  // Returns the id for `name`, interning it if new. `arity` (if >= 0) is
  // recorded on first sight and GEREL_CHECKed against later uses.
  RelationId Relation(std::string_view name, int arity = -1);
  const std::string& RelationName(RelationId id) const;
  // Arity of the relation (args + annotation positions), or -1 if not yet
  // recorded.
  int RelationArity(RelationId id) const;
  void SetRelationArity(RelationId id, int arity);
  // Whether `name` has been interned already.
  bool HasRelation(std::string_view name) const;
  size_t NumRelations() const { return relation_names_.size(); }
  // Fresh relation derived from `base`, guaranteed unique ("base#k").
  RelationId FreshRelation(std::string_view base, int arity);

  // --- Constants ---------------------------------------------------------

  Term Constant(std::string_view name);
  const std::string& ConstantName(Term t) const;
  size_t NumConstants() const { return constant_names_.size(); }

  // --- Variables ---------------------------------------------------------

  Term Variable(std::string_view name);
  const std::string& VariableName(Term t) const;
  size_t NumVariables() const { return variable_names_.size(); }
  // Fresh variable derived from `base`, guaranteed unique ("Base#k").
  Term FreshVariable(std::string_view base);

  // --- Labeled nulls -----------------------------------------------------

  // Returns a fresh labeled null. Nulls are anonymous; they print as
  // "_n<k>".
  Term FreshNull() { return Term::Null(next_null_++); }
  // Interns a named null appearing in an input database file.
  Term NamedNull(std::string_view name);
  uint32_t NumNulls() const { return next_null_; }
  // Raises the null counter to at least `n`, so nulls with ids < n loaded
  // from a persisted snapshot never collide with future FreshNull calls.
  void RestoreNullCounter(uint32_t n) {
    if (n > next_null_) next_null_ = n;
  }

  // Human-readable rendering of any ground or non-ground term.
  std::string TermName(Term t) const;

 private:
  std::unordered_map<std::string, RelationId> relation_ids_;
  std::vector<std::string> relation_names_;
  std::vector<int> relation_arities_;

  std::unordered_map<std::string, uint32_t> constant_ids_;
  std::vector<std::string> constant_names_;

  std::unordered_map<std::string, uint32_t> variable_ids_;
  std::vector<std::string> variable_names_;

  std::unordered_map<std::string, uint32_t> named_nulls_;
  uint32_t next_null_ = 0;
  uint32_t fresh_counter_ = 0;
};

}  // namespace gerel

#endif  // GEREL_CORE_SYMBOL_TABLE_H_
