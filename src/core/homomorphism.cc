#include "core/homomorphism.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "core/check.h"

namespace gerel {

namespace {

// Tries to extend `subst` so that subst(pattern) == target for one atom.
// Only variables in `bindable` may be (re)bound: target-side variables
// are rigid even when a pattern variable was previously bound onto one
// (the image then behaves like a constant). The caller saves/restores the
// substitution around the call.
bool UnifyAtom(const Atom& pattern, const Atom& target,
               const std::unordered_set<uint32_t>& bindable,
               Substitution* subst) {
  if (pattern.pred != target.pred ||
      pattern.args.size() != target.args.size() ||
      pattern.annotation.size() != target.annotation.size()) {
    return false;
  }
  auto unify_seq = [&](const std::vector<Term>& ps,
                       const std::vector<Term>& ts) {
    for (size_t i = 0; i < ps.size(); ++i) {
      Term p = ps[i];
      bool is_free =
          p.IsVariable() && bindable.count(p.bits()) > 0 && !subst->IsBound(p);
      if (is_free) {
        subst->Bind(p, ts[i]);
      } else if (subst->Apply(p) != ts[i]) {
        return false;
      }
    }
    return true;
  };
  return unify_seq(pattern.args, target.args) &&
         unify_seq(pattern.annotation, target.annotation);
}

// Backtracking matcher shared by database and atom-set targets.
class Matcher {
 public:
  Matcher(const std::vector<Atom>& pattern, const Database* db,
          const std::vector<Atom>* target, const HomomorphismVisitor& visitor)
      : pattern_(pattern), db_(db), target_(target), visitor_(visitor) {}

  // Returns false iff the visitor requested a stop.
  bool Run(const Substitution& initial) {
    subst_ = initial;
    used_.assign(pattern_.size(), false);
    bindable_.clear();
    for (const Atom& a : pattern_) {
      for (Term t : a.AllVars()) bindable_.insert(t.bits());
    }
    return Recurse(0);
  }

 private:
  // Number of bound terms in `atom` under the current substitution.
  int BoundCount(const Atom& atom) const {
    int n = 0;
    for (Term t : atom.args) {
      if (!subst_.Apply(t).IsVariable()) ++n;
    }
    for (Term t : atom.annotation) {
      if (!subst_.Apply(t).IsVariable()) ++n;
    }
    return n;
  }

  // Picks the unprocessed pattern atom with the most bound terms (a cheap
  // most-constrained-first heuristic).
  int PickNext() const {
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (used_[i]) continue;
      int b = BoundCount(pattern_[i]);
      if (b > best_bound) {
        best_bound = b;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  bool Recurse(size_t depth) {
    if (depth == pattern_.size()) return visitor_(subst_);
    int idx = PickNext();
    GEREL_CHECK(idx >= 0);
    used_[idx] = true;
    const Atom& p = pattern_[idx];
    bool keep_going = true;
    auto try_target = [&](const Atom& candidate) {
      Substitution saved = subst_;
      if (UnifyAtom(p, candidate, bindable_, &subst_)) {
        keep_going = Recurse(depth + 1);
      }
      subst_ = std::move(saved);
      return keep_going;
    };
    if (db_ != nullptr) {
      // Choose the most selective index available. The postings are
      // snapshotted: visitors (chase/Datalog rule firing) may insert into
      // the database mid-enumeration, which can reallocate the index;
      // atoms added during the enumeration are picked up by the caller's
      // next semi-naive round.
      const std::vector<uint32_t>* postings = &db_->AtomsOf(p.pred);
      if (db_->position_index_enabled()) {
        uint32_t pos = 0;
        auto consider = [&](Term t) {
          Term s = subst_.Apply(t);
          if (!s.IsVariable()) {
            const std::vector<uint32_t>& cand = db_->AtomsAt(p.pred, pos, s);
            if (cand.size() < postings->size()) postings = &cand;
          }
          ++pos;
        };
        for (Term t : p.args) consider(t);
        for (Term t : p.annotation) consider(t);
      }
      const std::vector<uint32_t> snapshot = *postings;
      for (uint32_t ai : snapshot) {
        if (!try_target(db_->atom(ai))) break;
      }
    } else {
      for (const Atom& candidate : *target_) {
        if (!try_target(candidate)) break;
      }
    }
    used_[idx] = false;
    return keep_going;
  }

  const std::vector<Atom>& pattern_;
  const Database* db_;
  const std::vector<Atom>* target_;
  const HomomorphismVisitor& visitor_;
  Substitution subst_;
  std::vector<bool> used_;
  std::unordered_set<uint32_t> bindable_;
};

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                         const Substitution& initial,
                         const HomomorphismVisitor& visitor) {
  Matcher m(pattern, &db, nullptr, visitor);
  return m.Run(initial);
}

bool HasHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                     const Substitution& initial) {
  bool found = false;
  ForEachHomomorphism(pattern, db, initial, [&found](const Substitution&) {
    found = true;
    return false;  // Stop at the first hit.
  });
  return found;
}

bool ForEachEmbedding(const std::vector<Atom>& pattern,
                      const std::vector<Atom>& target,
                      const Substitution& initial,
                      const HomomorphismVisitor& visitor) {
  Matcher m(pattern, nullptr, &target, visitor);
  return m.Run(initial);
}

bool DatabaseMapsInto(const Database& a, const Database& b) {
  // Nulls of `a` behave as variables of the pattern; constants are fixed.
  std::vector<Atom> pattern;
  pattern.reserve(a.size());
  for (const Atom& atom : a.atoms()) {
    Atom p = atom;
    auto null_to_var = [](std::vector<Term>* ts) {
      for (Term& t : *ts) {
        if (t.IsNull()) t = Term::Variable(t.id());
      }
    };
    null_to_var(&p.args);
    null_to_var(&p.annotation);
    pattern.push_back(std::move(p));
  }
  return HasHomomorphism(pattern, b);
}

bool HomomorphicallyEquivalent(const Database& a, const Database& b) {
  return DatabaseMapsInto(a, b) && DatabaseMapsInto(b, a);
}

}  // namespace gerel
