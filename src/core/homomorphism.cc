#include "core/homomorphism.h"

#include <algorithm>

#include "core/check.h"
#include "core/join_plan.h"

namespace gerel {

namespace {

// Pattern variables that `initial` pre-binds; they seed the executor and
// count as bound for the compiled join order.
std::vector<Term> PreBoundVars(const std::vector<Atom>& pattern,
                               const Substitution& initial) {
  std::vector<Term> out;
  if (initial.empty()) return out;
  for (const Atom& a : pattern) {
    for (Term v : a.AllVars()) {
      if (initial.IsBound(v) &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

void SeedExecutor(const std::vector<Term>& pre_bound,
                  const Substitution& initial, JoinExecutor* exec) {
  for (Term v : pre_bound) exec->Bind(v, initial.Apply(v));
}

// Adapts a plan-based match to the Substitution-taking visitor of the
// public API: the visitor sees `initial` extended by the slot bindings.
JoinExecutor::Visitor SubstitutionVisitor(const Substitution& initial,
                                          const HomomorphismVisitor& visitor) {
  return [&initial, &visitor](const JoinExecutor& e) {
    Substitution h = initial;
    e.AppendBindings(&h);
    return visitor(h);
  };
}

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                         const Substitution& initial,
                         const HomomorphismVisitor& visitor) {
  std::vector<Term> pre_bound = PreBoundVars(pattern, initial);
  JoinPlan plan(pattern, pre_bound);
  JoinExecutor exec;
  exec.Reset(plan);
  SeedExecutor(pre_bound, initial, &exec);
  // Visitors may insert into the database mid-enumeration (chase and
  // Datalog rule firing), so candidate lists are snapshotted per level.
  return exec.Execute(plan, db, SubstitutionVisitor(initial, visitor),
                      /*db_grows=*/true);
}

bool HasHomomorphism(const std::vector<Atom>& pattern, const Database& db,
                     const Substitution& initial) {
  std::vector<Term> pre_bound = PreBoundVars(pattern, initial);
  JoinPlan plan(pattern, pre_bound);
  JoinExecutor exec;
  exec.Reset(plan);
  SeedExecutor(pre_bound, initial, &exec);
  bool found = false;
  exec.Execute(plan, db,
               [&found](const JoinExecutor&) {
                 found = true;
                 return false;  // Stop at the first hit.
               },
               /*db_grows=*/false);
  return found;
}

bool ForEachEmbedding(const std::vector<Atom>& pattern,
                      const std::vector<Atom>& target,
                      const Substitution& initial,
                      const HomomorphismVisitor& visitor) {
  std::vector<Term> pre_bound = PreBoundVars(pattern, initial);
  JoinPlan plan(pattern, pre_bound);
  JoinExecutor exec;
  exec.Reset(plan);
  SeedExecutor(pre_bound, initial, &exec);
  return exec.ExecuteOnAtoms(plan, target,
                             SubstitutionVisitor(initial, visitor));
}

bool DatabaseMapsInto(const Database& a, const Database& b) {
  // Nulls of `a` behave as variables of the pattern; constants are fixed.
  std::vector<Atom> pattern;
  pattern.reserve(a.size());
  for (const Atom& atom : a.atoms()) {
    Atom p = atom;
    auto null_to_var = [](std::vector<Term>* ts) {
      for (Term& t : *ts) {
        if (t.IsNull()) t = Term::Variable(t.id());
      }
    };
    null_to_var(&p.args);
    null_to_var(&p.annotation);
    pattern.push_back(std::move(p));
  }
  return HasHomomorphism(pattern, b);
}

bool HomomorphicallyEquivalent(const Database& a, const Database& b) {
  return DatabaseMapsInto(a, b) && DatabaseMapsInto(b, a);
}

}  // namespace gerel
