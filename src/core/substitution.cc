#include "core/substitution.h"

#include "core/check.h"

namespace gerel {

void Substitution::Bind(Term var, Term value) {
  GEREL_CHECK(var.IsVariable());
  map_[var] = value;
}

bool Substitution::IsBound(Term var) const { return map_.count(var) > 0; }

Term Substitution::Apply(Term t) const {
  if (!t.IsVariable()) return t;
  auto it = map_.find(t);
  return it == map_.end() ? t : it->second;
}

Atom Substitution::Apply(const Atom& atom) const {
  Atom out;
  out.pred = atom.pred;
  out.args.reserve(atom.args.size());
  for (Term t : atom.args) out.args.push_back(Apply(t));
  out.annotation.reserve(atom.annotation.size());
  for (Term t : atom.annotation) out.annotation.push_back(Apply(t));
  return out;
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(a));
  return out;
}

Literal Substitution::Apply(const Literal& lit) const {
  return Literal(Apply(lit.atom), lit.negated);
}

Rule Substitution::Apply(const Rule& rule) const {
  Rule out;
  out.body.reserve(rule.body.size());
  for (const Literal& l : rule.body) out.body.push_back(Apply(l));
  out.head = Apply(rule.head);
  return out;
}

std::vector<Term> Substitution::Domain() const {
  std::vector<Term> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(k);
  return out;
}

std::vector<Term> Substitution::Range() const {
  std::vector<Term> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(v);
  return out;
}

}  // namespace gerel
