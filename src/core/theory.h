// Theories (finite sets of rules) and queries (Σ, Q) (paper §2).
#ifndef GEREL_CORE_THEORY_H_
#define GEREL_CORE_THEORY_H_

#include <string>
#include <vector>

#include "core/rule.h"
#include "core/symbol_table.h"

namespace gerel {

// A finite set of existential rules, ordered for reproducibility.
class Theory {
 public:
  Theory() = default;
  explicit Theory(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  // Distinct relations occurring in the theory (body and head), in
  // first-occurrence order.
  std::vector<RelationId> Relations() const;
  // Maximal arity over all relations appearing in the theory (the `k` and
  // `m` of Prop 2 / Def 7); 0 for the empty theory. Counts argument
  // positions only (annotations are name decorations).
  size_t MaxArity() const;
  // Maximal argument arity including annotation positions.
  size_t MaxFullArity() const;
  // Distinct constants occurring in rules.
  std::vector<Term> Constants() const;
  // Number of distinct variables in the largest rule (the `v` of §6).
  size_t MaxVarsPerRule() const;

  bool HasNegation() const;

  Status Validate(const SymbolTable& symbols) const;

 private:
  std::vector<Rule> rules_;
};

// A query (Σ, Q): a theory plus an output relation (paper §2).
struct Query {
  Theory theory;
  RelationId output = 0;
};

}  // namespace gerel

#endif  // GEREL_CORE_THEORY_H_
