// Lightweight error propagation for gerel.
//
// The library does not use exceptions (see DESIGN.md). Fallible operations
// return Status (for side-effecting calls) or Result<T> (for producing
// calls). Both carry a human-readable message on failure.
#ifndef GEREL_CORE_STATUS_H_
#define GEREL_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

namespace gerel {

// Outcome of a fallible operation with no produced value.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool ok() const { return ok_; }
  // Message describing the failure; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

// Outcome of a fallible operation producing a T.
//
// Usage:
//   Result<Theory> r = ParseTheory(...);
//   if (!r.ok()) { ... r.status().message() ... }
//   Theory t = std::move(r).value();
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites readable (`return theory;` / `return Status::Error(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    GEREL_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GEREL_CHECK(ok());
    return *value_;
  }
  T& value() & {
    GEREL_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    GEREL_CHECK(ok());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gerel

#endif  // GEREL_CORE_STATUS_H_
