// Rendering of terms, atoms, rules, theories, and databases in the
// parser's text format (round-trippable).
#ifndef GEREL_CORE_PRINTER_H_
#define GEREL_CORE_PRINTER_H_

#include <string>

#include "core/database.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

std::string ToString(Term t, const SymbolTable& symbols);
std::string ToString(const Atom& atom, const SymbolTable& symbols);
std::string ToString(const Literal& lit, const SymbolTable& symbols);
std::string ToString(const Rule& rule, const SymbolTable& symbols);
// One rule per line, terminated by periods.
std::string ToString(const Theory& theory, const SymbolTable& symbols);
// One fact per line, sorted lexicographically for reproducible output.
std::string ToString(const Database& db, const SymbolTable& symbols);

}  // namespace gerel

#endif  // GEREL_CORE_PRINTER_H_
