// Chase-termination guarantees via acyclicity (paper §9 cites
// acyclicity-based Datalog translations [Krötzsch & Rudolph, IJCAI'11]).
//
// Weak acyclicity (Fagin et al.): build the position dependency graph
// with regular edges (a universal variable flows from a body position to
// a head position) and special edges (a body position feeds an
// existential position); the theory is weakly acyclic iff no cycle goes
// through a special edge. The semi-oblivious (Skolem) chase of a weakly
// acyclic theory terminates on every database in polynomially many
// steps. (The naive oblivious chase, which keys triggers on *all* body
// variables, can diverge even here — e.g. p(x) → ∃y p(y) has no frontier
// and hence an empty position graph.)
//
// Joint acyclicity (Krötzsch & Rudolph) refines this with a dependency
// relation between existential variables; it is strictly more general
// and guarantees termination of the *semi-oblivious* (Skolem) chase
// (ChaseOptions::semi_oblivious) — the fully oblivious chase may still
// diverge on jointly acyclic theories by inventing fresh nulls for
// non-frontier bindings.
#ifndef GEREL_CORE_ACYCLICITY_H_
#define GEREL_CORE_ACYCLICITY_H_

#include "core/theory.h"

namespace gerel {

// Whether the position dependency graph has no cycle through a special
// edge. Guarantees semi-oblivious chase termination.
bool IsWeaklyAcyclic(const Theory& theory);

// Joint acyclicity: the "existential dependency" graph over existential
// variables (y depends on y' when a frontier variable feeding y's rule
// can be bound to a null invented for y') is acyclic. Strictly
// generalizes weak acyclicity; guarantees semi-oblivious chase
// termination.
bool IsJointlyAcyclic(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_CORE_ACYCLICITY_H_
