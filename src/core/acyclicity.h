// Chase-termination guarantees via acyclicity (paper §9 cites
// acyclicity-based Datalog translations [Krötzsch & Rudolph, IJCAI'11]).
//
// Weak acyclicity (Fagin et al.): build the position dependency graph
// with regular edges (a universal variable flows from a body position to
// a head position) and special edges (a body position feeds an
// existential position); the theory is weakly acyclic iff no cycle goes
// through a special edge. The semi-oblivious (Skolem) chase of a weakly
// acyclic theory terminates on every database in polynomially many
// steps. (The naive oblivious chase, which keys triggers on *all* body
// variables, can diverge even here — e.g. p(x) → ∃y p(y) has no frontier
// and hence an empty position graph.)
//
// Joint acyclicity (Krötzsch & Rudolph) refines this with a dependency
// relation between existential variables; it is strictly more general
// and guarantees termination of the *semi-oblivious* (Skolem) chase
// (ChaseOptions::semi_oblivious) — the fully oblivious chase may still
// diverge on jointly acyclic theories by inventing fresh nulls for
// non-frontier bindings.
//
// The dependency structure itself (ExistentialDependencyGraph) is
// exposed: the termination analyzer renders it (core/graphviz.h), emits
// topological orders as acyclicity certificates, and reuses the Ω sets
// for the "attacked variable" relation of shy theories (core/classify.h).
#ifndef GEREL_CORE_ACYCLICITY_H_
#define GEREL_CORE_ACYCLICITY_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

// A Skolem function: one existential variable of one rule. Under
// skolemization the variable becomes the function symbol f_{σ,y} applied
// to σ's frontier; every labeled null the semi-oblivious chase invents
// is a term of exactly one such function.
struct SkolemFunction {
  size_t rule = 0;  // 0-based index into Theory::rules().
  Term var;         // The existential variable.

  friend bool operator==(const SkolemFunction& a, const SkolemFunction& b) {
    return a.rule == b.rule && a.var == b.var;
  }
};

// "r<rule>.<var>", e.g. "r2.Y" — the stable display name used by DOT
// renderings, certificates, and diagnostics (rule indices are 0-based,
// matching the analyzer's "rule N" convention).
std::string SkolemFunctionName(const SkolemFunction& f,
                               const SymbolTable& symbols);

// Packs a relation position (R, i) into the key used by the Ω sets.
inline uint64_t PackPosition(RelationId pred, uint32_t pos) {
  return (static_cast<uint64_t>(pred) << 32) | pos;
}

// The existential dependency graph of joint acyclicity: one node per
// Skolem function f, its invaded-position set Ω(f), and an edge f → g
// when a null of f can feed the frontier of g's rule (so g-nulls can be
// built on top of f-nulls). Acyclic ⇔ jointly acyclic ⇒ the
// semi-oblivious chase terminates on every database.
struct ExistentialDependencyGraph {
  std::vector<SkolemFunction> functions;
  // omega[i]: positions (PackPosition) that nulls of functions[i] can
  // reach, per the Def 2-style propagation fixpoint.
  std::vector<std::unordered_set<uint64_t>> omega;
  // edges[i]: target indices j with functions[i] → functions[j], in
  // increasing order.
  std::vector<std::vector<size_t>> edges;
};

ExistentialDependencyGraph BuildExistentialDependencyGraph(
    const Theory& theory);

// Topological sort of the dependency graph. On success returns true and
// fills `order` (if non-null) with every function index, dependencies
// first — a machine-checkable acyclicity certificate. On failure returns
// false and fills `cycle` (if non-null) with a closed witness path
// f0 → f1 → ... → f0 (first index repeated at the end).
bool ExistentialTopoOrder(const ExistentialDependencyGraph& graph,
                          std::vector<size_t>* order,
                          std::vector<size_t>* cycle);

// Whether the position dependency graph has no cycle through a special
// edge. Guarantees semi-oblivious chase termination.
bool IsWeaklyAcyclic(const Theory& theory);

// Joint acyclicity: the "existential dependency" graph over existential
// variables (y depends on y' when a frontier variable feeding y's rule
// can be bound to a null invented for y') is acyclic. Strictly
// generalizes weak acyclicity; guarantees semi-oblivious chase
// termination.
bool IsJointlyAcyclic(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_CORE_ACYCLICITY_H_
