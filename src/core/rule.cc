#include "core/rule.h"

#include <algorithm>

namespace gerel {

namespace {

void AppendDistinct(const std::vector<Term>& in, std::vector<Term>* out) {
  for (Term t : in) {
    if (std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

}  // namespace

Rule Rule::Positive(const std::vector<Atom>& body_atoms,
                    std::vector<Atom> head_atoms) {
  Rule r;
  r.body.reserve(body_atoms.size());
  for (const Atom& a : body_atoms) r.body.emplace_back(a);
  r.head = std::move(head_atoms);
  return r;
}

std::vector<Term> Rule::UVars() const {
  std::vector<Term> out;
  for (const Literal& l : body) AppendDistinct(l.atom.AllVars(), &out);
  return out;
}

std::vector<Term> Rule::EVars() const {
  std::vector<Term> body_vars = UVars();
  std::vector<Term> out;
  for (const Atom& a : head) {
    for (Term v : a.AllVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
              body_vars.end() &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

std::vector<Term> Rule::FVars() const {
  std::vector<Term> body_vars = UVars();
  std::vector<Term> out;
  for (const Atom& a : head) {
    for (Term v : a.AllVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) !=
              body_vars.end() &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

std::vector<Term> Rule::Vars() const {
  std::vector<Term> out = UVars();
  for (const Atom& a : head) AppendDistinct(a.AllVars(), &out);
  return out;
}

bool Rule::IsFact() const {
  return body.empty() && head.size() == 1 && head[0].IsGroundOverConstants();
}

bool Rule::HasNegation() const {
  return std::any_of(body.begin(), body.end(),
                     [](const Literal& l) { return l.negated; });
}

std::vector<Atom> Rule::PositiveBody() const {
  std::vector<Atom> out;
  for (const Literal& l : body) {
    if (!l.negated) out.push_back(l.atom);
  }
  return out;
}

std::vector<Term> Rule::Constants() const {
  std::vector<Term> out;
  auto scan = [&out](const Atom& a) {
    for (Term t : a.AllTerms()) {
      if (t.IsConstant() &&
          std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  };
  for (const Literal& l : body) scan(l.atom);
  for (const Atom& a : head) scan(a);
  return out;
}

Status Rule::Validate(const SymbolTable& symbols) const {
  if (head.empty()) return Status::Error("rule has empty head");
  std::vector<Term> positive_vars;
  for (const Literal& l : body) {
    if (!l.negated) AppendDistinct(l.atom.AllVars(), &positive_vars);
  }
  auto in_positive = [&positive_vars](Term v) {
    return std::find(positive_vars.begin(), positive_vars.end(), v) !=
           positive_vars.end();
  };
  for (const Literal& l : body) {
    if (!l.negated) continue;
    for (Term v : l.atom.AllVars()) {
      if (!in_positive(v)) {
        return Status::Error("unsafe rule: variable " +
                             symbols.VariableName(v) +
                             " occurs only in a negative literal");
      }
    }
  }
  // Frontier variables are body variables by definition; what must be
  // checked is that negated literals never bind head variables, which the
  // loop above covers, and that no labeled null occurs in a rule.
  auto no_nulls = [](const Atom& a) {
    for (Term t : a.AllTerms()) {
      if (t.IsNull()) return false;
    }
    return true;
  };
  for (const Literal& l : body) {
    if (!no_nulls(l.atom)) return Status::Error("rule contains labeled null");
  }
  for (const Atom& a : head) {
    if (!no_nulls(a)) return Status::Error("rule contains labeled null");
  }
  return Status::Ok();
}

size_t RuleHash::operator()(const Rule& r) const {
  size_t h = 0x51ED270B;
  AtomHash ah;
  for (const Literal& l : r.body) {
    h ^= ah(l.atom) + (l.negated ? 0x1234567 : 0) + (h << 6) + (h >> 2);
  }
  h ^= 0xFEDCBA;
  for (const Atom& a : r.head) h ^= ah(a) + (h << 6) + (h >> 2);
  return h;
}

}  // namespace gerel
