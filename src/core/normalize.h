// Normalization into the normal form of Def 4 (Prop 1):
//   (i)   every rule has a singleton head,
//   (ii)  every existential rule is guarded,
//   (iii) constants only occur in rules of the form → R(c).
//
// The transformation preserves answers over the original signature and
// preserves membership in the weakly (frontier-)guarded and nearly
// (frontier-)guarded classes.
//
// Documented deviation (see DESIGN.md §2): for a *fully guarded* input
// rule containing constants, the constant-extraction step introduces a
// fresh unary `const#c(Xc)` body atom whose variable cannot join the
// guard, so the output rule is only nearly guarded. All downstream
// translations handle nearly guarded rules (Prop 6), so the pipeline is
// unaffected; constant-free guarded theories normalize to guarded
// theories exactly as in the paper.
#ifndef GEREL_CORE_NORMALIZE_H_
#define GEREL_CORE_NORMALIZE_H_

#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct NormalizeOptions {
  bool extract_constants = true;
  bool split_heads = true;
  bool guard_existential_rules = true;
};

// Returns an equivalent (w.r.t. ground atomic consequences over the
// original signature) theory in normal form. Fresh relations are derived
// from "aux".
Theory Normalize(const Theory& theory, SymbolTable* symbols,
                 const NormalizeOptions& options = NormalizeOptions());

// Whether `theory` satisfies Def 4 (i)-(iii).
bool IsNormal(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_CORE_NORMALIZE_H_
