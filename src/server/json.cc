#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gerel {
namespace server {

namespace {

// Recursive-descent parser over a string_view with a byte cursor.
// Errors carry the offset so a malformed frame can be reported
// precisely without echoing the (possibly huge) frame back.
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    SkipSpace();
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::Error("json: " + what + " at byte " +
                         std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::Bool(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::Bool(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue::Null();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      JsonValue v;
      st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->Set(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipSpace();
      JsonValue v;
      Status st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->Push(std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp)) return Error("invalid \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the paired low surrogate.
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                pos_ += 2;
                uint32_t lo = 0;
                if (!ParseHex4(&lo) || lo < 0xDC00 || lo > 0xDFFF) {
                  return Error("invalid surrogate pair");
                }
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Error("unpaired surrogate");
              }
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Error("invalid escape");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Error("unterminated string");
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string lexeme(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(lexeme.c_str(), nullptr));
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

Result<JsonValue> JsonValue::Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Push(JsonValue v) { items_.push_back(std::move(v)); }

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      double i = 0;
      if (std::modf(number_, &i) == 0.0 && std::abs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      return buf;
    }
    case Kind::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ", ";
        out += items_[i].Dump();
      }
      out += "]";
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(members_[i].first) +
               "\": " + members_[i].second.Dump();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

}  // namespace server
}  // namespace gerel
