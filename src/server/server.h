// The TCP socket front-end: a listener plus a fixed worker pool serving
// the JSON-lines wire protocol (docs/protocol.md) over a shared
// Dispatcher.
//
// Connection model: the accept loop pushes accepted sockets onto a
// queue; each of `num_workers` threads owns one connection at a time
// and serves its requests in order until the peer closes (responses are
// written in request order per connection — the protocol has no
// interleaving). Framing failures never kill the connection unless the
// stream is unrecoverable: a malformed or oversized frame gets an error
// response and the session continues; a mid-frame disconnect discards
// the partial frame.
//
// Graceful shutdown: Shutdown() stops accepting, lets every in-flight
// request finish and its response flush, then joins the threads. The
// caller (gerel-server main) then saves dirty tenants via
// TenantRegistry::SaveDirty.
#ifndef GEREL_SERVER_SERVER_H_
#define GEREL_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "server/dispatch.h"

namespace gerel {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read the result from port().
  uint16_t port = 0;
  size_t num_workers = 4;
  // Longest accepted request line; longer frames are drained to their
  // newline and answered with an "oversized" error.
  size_t max_line_bytes = size_t{1} << 20;
};

class SocketServer {
 public:
  SocketServer(Dispatcher* dispatcher, ServerOptions options)
      : dispatcher_(dispatcher), options_(std::move(options)) {}
  ~SocketServer() { Shutdown(); }

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and spawns the accept and worker threads.
  Status Start();
  // The bound port (valid after Start).
  uint16_t port() const { return port_; }

  // Stops accepting, drains in-flight requests, joins all threads.
  // Idempotent; also called by the destructor.
  void Shutdown();

  uint64_t connections_accepted() const { return connections_.load(); }
  uint64_t requests_served() const { return requests_.load(); }
  uint64_t protocol_errors() const { return protocol_errors_.load(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Dispatcher* const dispatcher_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // Accepted fds awaiting a worker.
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  bool started_ = false;
};

}  // namespace server
}  // namespace gerel

#endif  // GEREL_SERVER_SERVER_H_
