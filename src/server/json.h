// A minimal JSON value, parser, and writer for the wire protocol
// (docs/protocol.md). The repo renders JSON in several places
// (ServiceStats::ToJson, the analyzer, bench dumps) but the socket
// front-end is the first component that must *read* untrusted JSON, so
// this is deliberately small and defensive: strict RFC 8259 subset,
// bounded nesting depth, no exceptions, Status-carrying parse errors
// with byte offsets.
//
// Numbers are stored as double; integral values round-trip without a
// decimal point for the magnitudes the protocol uses (sequence numbers,
// counts — well under 2^53).
#ifndef GEREL_SERVER_JSON_H_
#define GEREL_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace gerel {
namespace server {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  // Parses exactly one JSON document; trailing non-whitespace is an
  // error. `max_depth` bounds array/object nesting.
  static Result<JsonValue> Parse(std::string_view text,
                                 size_t max_depth = 32);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  // Object members in insertion order (the writer and tests rely on a
  // stable order).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;

  // Mutators (builder style).
  void Push(JsonValue v);                        // Array.
  void Set(std::string key, JsonValue v);        // Object.

  // Serializes the value on one line (no insignificant whitespace
  // beyond ", " / ": " separators, matching the repo's JSON style).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes `s` for embedding in a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

}  // namespace server
}  // namespace gerel

#endif  // GEREL_SERVER_JSON_H_
