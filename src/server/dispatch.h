// The request-dispatch core shared by the socket front-end
// (server/server.h) and the stdin REPL (server/session.h): both decode
// their input into a WireRequest, pass it here, and render the
// DispatchOutcome in their own framing — so the two paths cannot drift.
//
// Locking per request (see registry.h): request text parses under the
// tenant's exclusive lock (parsing interns symbols), queries execute and
// render under the shared lock, and mutations hold the exclusive lock
// throughout (updating the replication cursor before releasing it).
#ifndef GEREL_SERVER_DISPATCH_H_
#define GEREL_SERVER_DISPATCH_H_

#include <string>

#include "server/registry.h"
#include "server/wire.h"

namespace gerel {
namespace server {

// The tenant a KB-scoped request resolves to when it names none.
inline constexpr char kDefaultKbName[] = "default";

class Dispatcher {
 public:
  explicit Dispatcher(TenantRegistry* registry) : registry_(registry) {}

  // Executes one request. Never fails at the C++ level: protocol and
  // semantic failures come back as outcomes with ok = false and a
  // stable error code.
  DispatchOutcome Dispatch(const WireRequest& req);

  TenantRegistry* registry() { return registry_; }

 private:
  DispatchOutcome Query(const WireRequest& req, const std::string& name);
  DispatchOutcome Assert(const WireRequest& req, const std::string& name);
  DispatchOutcome Retract(const WireRequest& req, const std::string& name);
  DispatchOutcome Prepare(const WireRequest& req, const std::string& name);
  DispatchOutcome Stats(const WireRequest& req);
  DispatchOutcome Save(const WireRequest& req, const std::string& name);
  DispatchOutcome Drop(const WireRequest& req, const std::string& name);

  TenantRegistry* const registry_;
};

}  // namespace server
}  // namespace gerel

#endif  // GEREL_SERVER_DISPATCH_H_
