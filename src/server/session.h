// A line-oriented command interpreter backing the `gerel serve`
// subcommand (docs/format.md, "Serve commands"). Since the socket
// front-end landed, the session is a thin renderer over the same
// request-dispatch core (server/dispatch.h) the server uses — stdin and
// socket requests execute identical code paths and cannot drift; only
// the framing (human text vs JSON lines) differs.
//
// Grammar, one command per line:
//
//   query <rule>      answer a conjunctive query (e.g. "query
//                     e(X, Y) -> q(X)") against the prepared model
//   assert <facts>    add ground facts (e.g. "assert e(a, b). e(b, c).";
//                     the final period may be omitted); the whole line
//                     is one batch — a single semi-naive delta pass
//   retract <facts>   remove EDB facts; served incrementally by DRed
//                     (overdelete → rederive → prune) or, when a
//                     fallback applies, by re-materializing the model.
//                     Retracting a fact not in the EDB is an error and
//                     leaves the KB untouched
//   stats             print the serving counters
//   save <path>       persist a crash-safe snapshot of the prepared KB
//   quit | exit       end the session
//
// Blank lines and lines starting with "%" or "#" are skipped. The
// session records whether any query returned sound-but-possibly-
// incomplete answers (saw_incomplete) and whether any command failed
// (saw_error), so callers can map them to exit codes.
#ifndef GEREL_SERVER_SESSION_H_
#define GEREL_SERVER_SESSION_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/symbol_table.h"
#include "server/dispatch.h"
#include "server/registry.h"
#include "service/prepared_kb.h"

namespace gerel {

class ServiceSession {
 public:
  // Single-KB session over externally-owned state: `kb` and `symbols`
  // must outlive the session, which registers them as the "default"
  // tenant of a private registry. The session itself is not thread-safe;
  // run one session per input stream.
  ServiceSession(PreparedKb* kb, SymbolTable* symbols);

  // Session over an external dispatcher (the CLI serve path): commands
  // address tenant `kb_name`. `dispatcher` must outlive the session.
  ServiceSession(server::Dispatcher* dispatcher, std::string kb_name);

  struct Response {
    std::string text;  // Complete output for the line ("" for skipped).
    bool error = false;
    bool quit = false;
  };

  // Executes one input line.
  Response HandleLine(std::string_view line);

  // Whether any query so far returned answers that are sound but not
  // certified complete.
  bool saw_incomplete() const { return saw_incomplete_; }
  // Whether any command so far failed to parse or execute.
  bool saw_error() const { return saw_error_; }

 private:
  Response Query(std::string_view text);
  Response Assert(std::string_view text);
  Response Retract(std::string_view text);
  Response Stats();
  Response Save(std::string_view text);
  Response RenderError(const server::DispatchOutcome& outcome);

  // Owned backing when constructed from a bare (kb, symbols) pair.
  std::unique_ptr<server::TenantRegistry> owned_registry_;
  std::unique_ptr<server::Dispatcher> owned_dispatcher_;
  server::Dispatcher* dispatcher_ = nullptr;
  std::string kb_name_;
  bool saw_incomplete_ = false;
  bool saw_error_ = false;
};

}  // namespace gerel

#endif  // GEREL_SERVER_SESSION_H_
