#include "server/session.h"

#include <cstdio>

#include "core/check.h"

namespace gerel {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits off the first whitespace-delimited word.
std::string_view FirstWord(std::string_view line, std::string_view* rest) {
  size_t i = 0;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  *rest = Trim(line.substr(i));
  return line.substr(0, i);
}

}  // namespace

ServiceSession::ServiceSession(PreparedKb* kb, SymbolTable* symbols)
    : kb_name_(server::kDefaultKbName) {
  owned_registry_ = std::make_unique<server::TenantRegistry>(
      server::TenantRegistry::Config());
  auto adopted = owned_registry_->Adopt(kb_name_, kb, symbols,
                                        /*snapshot_path=*/"");
  GEREL_CHECK(adopted.ok());
  owned_dispatcher_ =
      std::make_unique<server::Dispatcher>(owned_registry_.get());
  dispatcher_ = owned_dispatcher_.get();
}

ServiceSession::ServiceSession(server::Dispatcher* dispatcher,
                               std::string kb_name)
    : dispatcher_(dispatcher), kb_name_(std::move(kb_name)) {}

ServiceSession::Response ServiceSession::HandleLine(std::string_view line) {
  Response r;
  line = Trim(line);
  if (line.empty() || line.front() == '%' || line.front() == '#') return r;
  std::string_view rest;
  std::string_view cmd = FirstWord(line, &rest);
  if (cmd == "quit" || cmd == "exit") {
    r.quit = true;
    return r;
  }
  if (cmd == "stats") return Stats();
  if (cmd == "query") return Query(rest);
  if (cmd == "assert") return Assert(rest);
  if (cmd == "retract") return Retract(rest);
  if (cmd == "save") return Save(rest);
  r.error = true;
  saw_error_ = true;
  r.text = "error: unknown command \"" + std::string(cmd) +
           "\" (expected query, assert, retract, stats, save, quit)\n";
  return r;
}

ServiceSession::Response ServiceSession::RenderError(
    const server::DispatchOutcome& outcome) {
  Response r;
  r.error = true;
  saw_error_ = true;
  r.text = "error: " + outcome.error_message + "\n";
  return r;
}

ServiceSession::Response ServiceSession::Query(std::string_view text) {
  server::WireRequest req;
  req.op = server::Op::kQuery;
  req.kb = kb_name_;
  req.cq = std::string(text);
  server::DispatchOutcome outcome = dispatcher_->Dispatch(req);
  if (!outcome.ok) return RenderError(outcome);
  Response r;
  for (const std::string& answer : outcome.query.answers) {
    r.text += answer + "\n";
  }
  char line[96];
  if (outcome.query.complete) {
    std::snprintf(line, sizeof(line), "%zu answers (complete)%s\n",
                  outcome.query.answers.size(),
                  outcome.query.cache_hit ? " [cached]" : "");
  } else {
    saw_incomplete_ = true;
    std::snprintf(line, sizeof(line),
                  "%zu answers (sound, possibly incomplete)%s\n",
                  outcome.query.answers.size(),
                  outcome.query.cache_hit ? " [cached]" : "");
  }
  r.text += line;
  if (outcome.query.degradation.degraded()) {
    r.text += "degradation: " + outcome.query.degradation.ToString() + "\n";
  }
  return r;
}

ServiceSession::Response ServiceSession::Assert(std::string_view text) {
  server::WireRequest req;
  req.op = server::Op::kAssert;
  req.kb = kb_name_;
  req.facts = std::string(text);
  server::DispatchOutcome outcome = dispatcher_->Dispatch(req);
  if (!outcome.ok) return RenderError(outcome);
  Response r;
  char line[96];
  std::snprintf(line, sizeof(line), "asserted %zu new, derived %zu (%s)\n",
                outcome.assert_reply.new_atoms,
                outcome.assert_reply.derived_atoms,
                outcome.assert_reply.delta ? "delta" : "rematerialized");
  r.text = line;
  return r;
}

ServiceSession::Response ServiceSession::Retract(std::string_view text) {
  server::WireRequest req;
  req.op = server::Op::kRetract;
  req.kb = kb_name_;
  req.facts = std::string(text);
  server::DispatchOutcome outcome = dispatcher_->Dispatch(req);
  if (!outcome.ok) return RenderError(outcome);
  Response r;
  char line[96];
  std::snprintf(line, sizeof(line),
                "retracted %zu, overdeleted %zu, rederived %zu (%s)\n",
                outcome.retract.removed, outcome.retract.overdeleted,
                outcome.retract.rederived,
                outcome.retract.delta ? "dred" : "rematerialized");
  r.text = line;
  return r;
}

ServiceSession::Response ServiceSession::Stats() {
  server::WireRequest req;
  req.op = server::Op::kStats;
  req.kb = kb_name_;
  server::DispatchOutcome outcome = dispatcher_->Dispatch(req);
  if (!outcome.ok) return RenderError(outcome);
  Response r;
  r.text = outcome.stats.total.ToString();
  return r;
}

ServiceSession::Response ServiceSession::Save(std::string_view text) {
  std::string path(Trim(text));
  if (path.empty()) {
    Response r;
    r.error = true;
    saw_error_ = true;
    r.text = "error: save requires a path\n";
    return r;
  }
  server::WireRequest req;
  req.op = server::Op::kSave;
  req.kb = kb_name_;
  req.path = path;
  server::DispatchOutcome outcome = dispatcher_->Dispatch(req);
  if (!outcome.ok) return RenderError(outcome);
  Response r;
  r.text = "snapshot saved to " + path + "\n";
  return r;
}

}  // namespace gerel
