// gerel-server: the networked multi-tenant KB server (docs/protocol.md).
//
//   gerel-server [--host=ADDR] [--port=N] [--workers=N] [--threads=N]
//                [--snapshot-dir=DIR] [--kb NAME=PROGRAM.gerel]...
//                [--max-rules=N] [--timeout-ms=N] [--max-atoms=N]
//                [--max-tenants=N]
//
// Speaks JSON lines over TCP: one request object per line, one response
// line per request. Tenants named with --kb are prepared (or warm-
// started from --snapshot-dir) before the listener opens; clients can
// create more at runtime with the "prepare" op. SIGTERM/SIGINT drain
// in-flight requests, save dirty tenants, and exit 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/dispatch.h"
#include "server/registry.h"
#include "server/server.h"

namespace {

std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: gerel-server [--host=ADDR] [--port=N] [--workers=N]\n"
      "                    [--threads=N] [--snapshot-dir=DIR]\n"
      "                    [--kb NAME=PROGRAM.gerel]... [--max-rules=N]\n"
      "                    [--timeout-ms=N] [--max-atoms=N]\n"
      "                    [--max-tenants=N]\n");
  return 64;
}

bool ParseSizeFlag(const char* value, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using gerel::server::Dispatcher;
  using gerel::server::ServerOptions;
  using gerel::server::SocketServer;
  using gerel::server::TenantRegistry;

  ServerOptions server_options;
  TenantRegistry::Config config;
  // Named tenants to prepare before serving, as (name, program path).
  std::vector<std::pair<std::string, std::string>> boot_kbs;
  size_t max_rules = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take_value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) == 0) return argv[i] + n;
      return nullptr;
    };
    uint64_t v = 0;
    if (const char* p = take_value("--host=")) {
      server_options.host = p;
    } else if (const char* p = take_value("--port=")) {
      if (!ParseSizeFlag(p, &v) || v > 65535) return Usage();
      server_options.port = static_cast<uint16_t>(v);
    } else if (const char* p = take_value("--workers=")) {
      if (!ParseSizeFlag(p, &v) || v == 0) return Usage();
      server_options.num_workers = static_cast<size_t>(v);
    } else if (const char* p = take_value("--threads=")) {
      if (!ParseSizeFlag(p, &v) || v == 0) return Usage();
      config.kb_options.datalog.num_threads = static_cast<int>(v);
      config.kb_options.pipeline.saturation.num_threads =
          static_cast<int>(v);
    } else if (const char* p = take_value("--snapshot-dir=")) {
      config.snapshot_dir = p;
    } else if (const char* p = take_value("--max-rules=")) {
      if (!ParseSizeFlag(p, &v)) return Usage();
      max_rules = static_cast<size_t>(v);
    } else if (const char* p = take_value("--timeout-ms=")) {
      if (!ParseSizeFlag(p, &v)) return Usage();
      config.kb_options.budget.timeout_ms = static_cast<double>(v);
    } else if (const char* p = take_value("--max-atoms=")) {
      if (!ParseSizeFlag(p, &v)) return Usage();
      config.kb_options.budget.max_atoms = v;
    } else if (const char* p = take_value("--max-tenants=")) {
      if (!ParseSizeFlag(p, &v) || v == 0) return Usage();
      config.max_tenants = static_cast<size_t>(v);
    } else if (arg == "--kb") {
      if (i + 1 >= argc) return Usage();
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr,
                     "gerel-server: --kb expects NAME=PROGRAM.gerel\n");
        return Usage();
      }
      boot_kbs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "gerel-server: unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  TenantRegistry registry(config);
  Dispatcher dispatcher(&registry);

  for (const auto& [name, path] : boot_kbs) {
    gerel::server::WireRequest req;
    req.op = gerel::server::Op::kPrepare;
    req.kb = name;
    req.path = path;
    req.max_rules = max_rules;
    gerel::server::DispatchOutcome outcome = dispatcher.Dispatch(req);
    if (!outcome.ok) {
      std::fprintf(stderr, "gerel-server: prepare %s: %s\n", name.c_str(),
                   outcome.error_message.c_str());
      return 1;
    }
    std::fprintf(stderr, "gerel-server: kb %s ready: mode=%s rules=%zu "
                 "model=%zu atoms%s\n",
                 name.c_str(), outcome.prepare.mode.c_str(),
                 outcome.prepare.datalog_rules, outcome.prepare.model_atoms,
                 outcome.prepare.loaded_snapshot ? " (warm start)" : "");
  }

  SocketServer server(&dispatcher, server_options);
  gerel::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "gerel-server: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }
  // Scripts read this line to learn the (possibly ephemeral) port.
  std::printf("gerel-server listening on %s:%u\n",
              server_options.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "gerel-server: draining...\n");
  server.Shutdown();
  gerel::Status saved = registry.SaveDirty();
  if (!saved.ok()) {
    std::fprintf(stderr, "gerel-server: snapshot save failed: %s\n",
                 std::string(saved.message()).c_str());
  }
  std::fprintf(stderr,
               "gerel-server: served %llu requests on %llu connections "
               "(%llu protocol errors)\n",
               static_cast<unsigned long long>(server.requests_served()),
               static_cast<unsigned long long>(
                   server.connections_accepted()),
               static_cast<unsigned long long>(server.protocol_errors()));
  return saved.ok() ? 0 : 1;
}
