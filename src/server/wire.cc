#include "server/wire.h"

namespace gerel {
namespace server {

const char* OpName(Op op) {
  switch (op) {
    case Op::kQuery: return "query";
    case Op::kAssert: return "assert";
    case Op::kRetract: return "retract";
    case Op::kPrepare: return "prepare";
    case Op::kStats: return "stats";
    case Op::kSave: return "save";
    case Op::kDrop: return "drop";
  }
  return "?";
}

namespace {

Status BadRequest(const std::string& detail) {
  return Status::Error(std::string(kErrBadRequest) + ": " + detail);
}

// Fetches a required string field.
Status GetString(const JsonValue& frame, const char* key, std::string* out) {
  const JsonValue* v = frame.Get(key);
  if (v == nullptr) {
    return BadRequest(std::string("missing field \"") + key + "\"");
  }
  if (!v->is_string()) {
    return BadRequest(std::string("field \"") + key +
                      "\" must be a string");
  }
  *out = v->as_string();
  return Status::Ok();
}

}  // namespace

Result<WireRequest> DecodeRequest(const JsonValue& frame) {
  if (!frame.is_object()) {
    return BadRequest("request frame must be a JSON object");
  }
  WireRequest req;
  std::string op;
  Status s = GetString(frame, "op", &op);
  if (!s.ok()) return s;
  if (op == "query") {
    req.op = Op::kQuery;
  } else if (op == "assert") {
    req.op = Op::kAssert;
  } else if (op == "retract") {
    req.op = Op::kRetract;
  } else if (op == "prepare") {
    req.op = Op::kPrepare;
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "save") {
    req.op = Op::kSave;
  } else if (op == "drop") {
    req.op = Op::kDrop;
  } else {
    return Status::Error(std::string(kErrUnknownOp) + ": unknown op \"" +
                         op + "\"");
  }
  if (const JsonValue* kb = frame.Get("kb"); kb != nullptr) {
    if (!kb->is_string()) return BadRequest("field \"kb\" must be a string");
    req.kb = kb->as_string();
  }
  if (const JsonValue* id = frame.Get("id"); id != nullptr) {
    if (!id->is_number()) return BadRequest("field \"id\" must be a number");
    req.has_id = true;
    req.id = id->as_int();
  }
  switch (req.op) {
    case Op::kQuery: {
      s = GetString(frame, "cq", &req.cq);
      if (!s.ok()) return s;
      break;
    }
    case Op::kAssert:
    case Op::kRetract: {
      const JsonValue* facts = frame.Get("facts");
      if (facts == nullptr) return BadRequest("missing field \"facts\"");
      if (facts->is_string()) {
        req.facts = facts->as_string();
      } else if (facts->is_array()) {
        // An array of fact statements becomes one batch: a single
        // parse, a single delta pass.
        for (const JsonValue& item : facts->items()) {
          if (!item.is_string()) {
            return BadRequest("\"facts\" array items must be strings");
          }
          std::string f = item.as_string();
          while (!f.empty() && (f.back() == ' ' || f.back() == '\t')) {
            f.pop_back();
          }
          if (f.empty()) continue;
          if (f.back() != '.') f += '.';
          if (!req.facts.empty()) req.facts += ' ';
          req.facts += f;
        }
      } else {
        return BadRequest("field \"facts\" must be a string or array");
      }
      break;
    }
    case Op::kPrepare: {
      const JsonValue* program = frame.Get("program");
      const JsonValue* path = frame.Get("path");
      if (program != nullptr) {
        if (!program->is_string()) {
          return BadRequest("field \"program\" must be a string");
        }
        req.program = program->as_string();
      }
      if (path != nullptr) {
        if (!path->is_string()) {
          return BadRequest("field \"path\" must be a string");
        }
        req.path = path->as_string();
      }
      if (req.program.empty() && req.path.empty()) {
        return BadRequest("prepare needs \"program\" or \"path\"");
      }
      if (const JsonValue* mr = frame.Get("max_rules"); mr != nullptr) {
        if (!mr->is_number() || mr->as_number() < 0) {
          return BadRequest("field \"max_rules\" must be a number");
        }
        req.max_rules = static_cast<size_t>(mr->as_int());
      }
      break;
    }
    case Op::kSave: {
      if (const JsonValue* path = frame.Get("path"); path != nullptr) {
        if (!path->is_string()) {
          return BadRequest("field \"path\" must be a string");
        }
        req.path = path->as_string();
      }
      break;
    }
    case Op::kStats:
    case Op::kDrop:
      break;
  }
  return req;
}

DispatchOutcome DispatchOutcome::Error(Op op, std::string kb,
                                       std::string code,
                                       std::string message) {
  DispatchOutcome out;
  out.ok = false;
  out.op = op;
  out.kb = std::move(kb);
  out.error_code = std::move(code);
  out.error_message = std::move(message);
  return out;
}

namespace {

void AppendCommon(const DispatchOutcome& outcome, bool has_id, int64_t id,
                  std::string* out) {
  *out += ", \"op\": \"";
  *out += OpName(outcome.op);
  *out += "\"";
  if (!outcome.kb.empty()) {
    *out += ", \"kb\": \"" + JsonEscape(outcome.kb) + "\"";
  }
  if (has_id) *out += ", \"id\": " + std::to_string(id);
}

void AppendCursor(const DispatchOutcome& outcome, std::string* out) {
  if (!outcome.has_cursor) return;
  *out += ", \"seq\": " + std::to_string(outcome.seq);
  *out += ", \"epoch\": " + std::to_string(outcome.epoch);
}

}  // namespace

std::string EncodeResponse(const DispatchOutcome& outcome, bool has_id,
                           int64_t id) {
  std::string out;
  if (!outcome.ok) {
    out = "{\"status\": \"error\"";
    AppendCommon(outcome, has_id, id, &out);
    out += ", \"error\": {\"code\": \"" + JsonEscape(outcome.error_code) +
           "\", \"message\": \"" + JsonEscape(outcome.error_message) +
           "\"}}";
    return out;
  }
  out = "{\"status\": \"ok\"";
  AppendCommon(outcome, has_id, id, &out);
  switch (outcome.op) {
    case Op::kQuery: {
      const QueryReply& q = outcome.query;
      out += ", \"answers\": [";
      for (size_t i = 0; i < q.answers.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(q.answers[i]) + "\"";
      }
      out += "], \"count\": " + std::to_string(q.answers.size());
      out += std::string(", \"complete\": ") +
             (q.complete ? "true" : "false");
      out += std::string(", \"cache_hit\": ") +
             (q.cache_hit ? "true" : "false");
      out += ", \"degradation\": ";
      out += q.degradation.degraded() ? q.degradation.ToJson() : "null";
      AppendCursor(outcome, &out);
      break;
    }
    case Op::kAssert: {
      const AssertReply& a = outcome.assert_reply;
      out += ", \"new\": " + std::to_string(a.new_atoms);
      out += ", \"derived\": " + std::to_string(a.derived_atoms);
      out += std::string(", \"delta\": ") + (a.delta ? "true" : "false");
      AppendCursor(outcome, &out);
      break;
    }
    case Op::kRetract: {
      const RetractReply& r = outcome.retract;
      out += ", \"removed\": " + std::to_string(r.removed);
      out += ", \"overdeleted\": " + std::to_string(r.overdeleted);
      out += ", \"rederived\": " + std::to_string(r.rederived);
      out += std::string(", \"delta\": ") + (r.delta ? "true" : "false");
      AppendCursor(outcome, &out);
      break;
    }
    case Op::kPrepare: {
      const PrepareReply& p = outcome.prepare;
      out += ", \"mode\": \"" + JsonEscape(p.mode) + "\"";
      out += ", \"rules\": " + std::to_string(p.datalog_rules);
      out += ", \"model_atoms\": " + std::to_string(p.model_atoms);
      out += std::string(", \"loaded_snapshot\": ") +
             (p.loaded_snapshot ? "true" : "false");
      out += std::string(", \"complete\": ") +
             (p.complete ? "true" : "false");
      AppendCursor(outcome, &out);
      break;
    }
    case Op::kStats: {
      const StatsReply& st = outcome.stats;
      if (st.aggregated) {
        out += ", \"kbs\": {";
        for (size_t i = 0; i < st.per_kb.size(); ++i) {
          if (i > 0) out += ", ";
          out += "\"" + JsonEscape(st.per_kb[i].first) +
                 "\": " + st.per_kb[i].second.ToJson();
        }
        out += "}, \"total\": " + st.total.ToJson();
      } else {
        out += ", \"stats\": " + st.total.ToJson();
        AppendCursor(outcome, &out);
      }
      break;
    }
    case Op::kSave: {
      out += ", \"path\": \"" + JsonEscape(outcome.save.path) + "\"";
      AppendCursor(outcome, &out);
      break;
    }
    case Op::kDrop: {
      out += ", \"dropped\": true";
      break;
    }
  }
  out += "}";
  return out;
}

std::string EncodeProtocolError(const std::string& code,
                                const std::string& message) {
  return "{\"status\": \"error\", \"error\": {\"code\": \"" +
         JsonEscape(code) + "\", \"message\": \"" + JsonEscape(message) +
         "\"}}";
}

}  // namespace server
}  // namespace gerel
