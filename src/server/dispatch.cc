#include "server/dispatch.h"

#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <sstream>

#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace server {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* ModeName(PreparedKb::Mode mode) {
  switch (mode) {
    case PreparedKb::Mode::kDatalog: return "datalog";
    case PreparedKb::Mode::kGuarded: return "guarded";
    case PreparedKb::Mode::kWeaklyGuarded: return "weakly guarded";
    case PreparedKb::Mode::kChaseMaterialized: return "chase";
  }
  return "?";
}

}  // namespace

DispatchOutcome Dispatcher::Dispatch(const WireRequest& req) {
  if (req.op == Op::kStats) return Stats(req);
  std::string name = req.kb.empty() ? kDefaultKbName : req.kb;
  switch (req.op) {
    case Op::kQuery: return Query(req, name);
    case Op::kAssert: return Assert(req, name);
    case Op::kRetract: return Retract(req, name);
    case Op::kPrepare: return Prepare(req, name);
    case Op::kSave: return Save(req, name);
    case Op::kDrop: return Drop(req, name);
    case Op::kStats: break;  // Handled above.
  }
  return DispatchOutcome::Error(req.op, name, kErrBadRequest,
                                "unhandled op");
}

DispatchOutcome Dispatcher::Query(const WireRequest& req,
                                  const std::string& name) {
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (tenant == nullptr) {
    return DispatchOutcome::Error(Op::kQuery, name, kErrUnknownKb,
                                  "unknown kb \"" + name + "\"");
  }
  Rule cq;
  {
    // Parsing interns names into the tenant's symbol table — exclusive.
    std::unique_lock<std::shared_mutex> lock(tenant->mu);
    Result<Rule> parsed = ParseRule(req.cq, tenant->symbols);
    if (!parsed.ok()) {
      return DispatchOutcome::Error(Op::kQuery, name, kErrParse,
                                    parsed.status().message());
    }
    cq = std::move(parsed).value();
  }
  // Execution and rendering only read the symbol table; the shared lock
  // admits concurrent queries while excluding parsers and mutations.
  // (An assert slipping in between the two locks is harmless — the
  // query just observes the newer, still-consistent model.)
  std::shared_lock<std::shared_mutex> lock(tenant->mu);
  Result<PreparedQueryResult> answers = tenant->kb->Query(cq);
  if (!answers.ok()) {
    return DispatchOutcome::Error(Op::kQuery, name, kErrFailed,
                                  answers.status().message());
  }
  DispatchOutcome out;
  out.op = Op::kQuery;
  out.kb = name;
  const Atom& head = cq.head[0];
  out.query.answers.reserve(answers.value().answers.size());
  for (const std::vector<Term>& tuple : answers.value().answers) {
    Atom a(head.pred, tuple);
    out.query.answers.push_back(ToString(a, *tenant->symbols));
  }
  out.query.complete = answers.value().complete;
  out.query.cache_hit = answers.value().cache_hit;
  out.query.degradation = answers.value().degradation;
  out.has_cursor = true;
  out.seq = tenant->seq;
  out.epoch = tenant->epoch;
  return out;
}

DispatchOutcome Dispatcher::Assert(const WireRequest& req,
                                   const std::string& name) {
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (tenant == nullptr) {
    return DispatchOutcome::Error(Op::kAssert, name, kErrUnknownKb,
                                  "unknown kb \"" + name + "\"");
  }
  std::unique_lock<std::shared_mutex> lock(tenant->mu);
  std::string padded(Trim(req.facts));
  if (!padded.empty() && padded.back() != '.') padded += '.';
  Result<Database> facts = ParseDatabase(padded, tenant->symbols);
  if (!facts.ok()) {
    return DispatchOutcome::Error(Op::kAssert, name, kErrParse,
                                  facts.status().message());
  }
  // One Assert call per request frame: the whole batch seeds a single
  // semi-naive delta pass.
  Result<AssertResult> result = tenant->kb->Assert(facts.value().AtomsVector());
  if (!result.ok()) {
    return DispatchOutcome::Error(Op::kAssert, name, kErrFailed,
                                  result.status().message());
  }
  if (result.value().delta) {
    ++tenant->seq;
  } else {
    // The model was rebuilt from the EDB: delta replicas cannot catch
    // up incrementally, so open a new epoch (full resync point).
    ++tenant->epoch;
    tenant->seq = 0;
  }
  tenant->dirty = true;
  DispatchOutcome out;
  out.op = Op::kAssert;
  out.kb = name;
  out.assert_reply.new_atoms = result.value().new_atoms;
  out.assert_reply.derived_atoms = result.value().derived_atoms;
  out.assert_reply.delta = result.value().delta;
  out.has_cursor = true;
  out.seq = tenant->seq;
  out.epoch = tenant->epoch;
  return out;
}

DispatchOutcome Dispatcher::Retract(const WireRequest& req,
                                    const std::string& name) {
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (tenant == nullptr) {
    return DispatchOutcome::Error(Op::kRetract, name, kErrUnknownKb,
                                  "unknown kb \"" + name + "\"");
  }
  std::unique_lock<std::shared_mutex> lock(tenant->mu);
  std::string padded(Trim(req.facts));
  if (!padded.empty() && padded.back() != '.') padded += '.';
  Result<Database> facts = ParseDatabase(padded, tenant->symbols);
  if (!facts.ok()) {
    return DispatchOutcome::Error(Op::kRetract, name, kErrParse,
                                  facts.status().message());
  }
  Result<RetractResult> result =
      tenant->kb->Retract(facts.value().AtomsVector());
  if (!result.ok()) {
    // Covers retracting an unknown or derived-only fact: the KB is
    // untouched, so the cursor does not move.
    return DispatchOutcome::Error(Op::kRetract, name, kErrFailed,
                                  result.status().message());
  }
  if (result.value().delta) {
    // DRed ran: replicas replay the retraction as one delta step.
    ++tenant->seq;
  } else {
    // Fallback re-materialization: full resync point.
    ++tenant->epoch;
    tenant->seq = 0;
  }
  tenant->dirty = true;
  DispatchOutcome out;
  out.op = Op::kRetract;
  out.kb = name;
  out.retract.removed = result.value().removed_atoms;
  out.retract.overdeleted = result.value().overdeleted_atoms;
  out.retract.rederived = result.value().rederived_atoms;
  out.retract.delta = result.value().delta;
  out.has_cursor = true;
  out.seq = tenant->seq;
  out.epoch = tenant->epoch;
  return out;
}

DispatchOutcome Dispatcher::Prepare(const WireRequest& req,
                                    const std::string& name) {
  if (!TenantRegistry::ValidName(name)) {
    return DispatchOutcome::Error(Op::kPrepare, name, kErrBadName,
                                  "invalid kb name \"" + name + "\"");
  }
  if (registry_->Find(name) != nullptr) {
    return DispatchOutcome::Error(Op::kPrepare, name, kErrKbExists,
                                  "kb \"" + name + "\" already exists");
  }
  std::string text = req.program;
  if (text.empty()) {
    std::ifstream in(req.path);
    if (!in) {
      return DispatchOutcome::Error(Op::kPrepare, name, kErrIo,
                                    "cannot open " + req.path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  TenantRegistry::PrepareInfo info;
  Result<std::shared_ptr<Tenant>> tenant =
      registry_->Prepare(name, text, req.max_rules, &info);
  if (!tenant.ok()) {
    // Covers parse failures, non-wfg theories, and prepare-race losses;
    // the message says which.
    return DispatchOutcome::Error(Op::kPrepare, name, kErrFailed,
                                  tenant.status().message());
  }
  std::shared_lock<std::shared_mutex> lock(tenant.value()->mu);
  DispatchOutcome out;
  out.op = Op::kPrepare;
  out.kb = name;
  out.prepare.mode = ModeName(tenant.value()->kb->mode());
  out.prepare.datalog_rules = tenant.value()->kb->datalog_rules();
  out.prepare.model_atoms = tenant.value()->kb->model_size();
  out.prepare.loaded_snapshot = info.loaded_snapshot;
  out.prepare.complete = tenant.value()->kb->prepare_complete();
  out.has_cursor = true;
  out.seq = tenant.value()->seq;
  out.epoch = tenant.value()->epoch;
  return out;
}

DispatchOutcome Dispatcher::Stats(const WireRequest& req) {
  DispatchOutcome out;
  out.op = Op::kStats;
  if (req.kb.empty()) {
    // Aggregate: one block per tenant (name-sorted) plus the sum.
    out.stats.aggregated = true;
    for (const std::shared_ptr<Tenant>& tenant : registry_->All()) {
      std::shared_lock<std::shared_mutex> lock(tenant->mu);
      ServiceStats stats = tenant->kb->stats();
      out.stats.total.Accumulate(stats);
      out.stats.per_kb.emplace_back(tenant->name, std::move(stats));
    }
    return out;
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(req.kb);
  if (tenant == nullptr) {
    return DispatchOutcome::Error(Op::kStats, req.kb, kErrUnknownKb,
                                  "unknown kb \"" + req.kb + "\"");
  }
  std::shared_lock<std::shared_mutex> lock(tenant->mu);
  out.kb = req.kb;
  out.stats.total = tenant->kb->stats();
  out.has_cursor = true;
  out.seq = tenant->seq;
  out.epoch = tenant->epoch;
  return out;
}

DispatchOutcome Dispatcher::Save(const WireRequest& req,
                                 const std::string& name) {
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (tenant == nullptr) {
    return DispatchOutcome::Error(Op::kSave, name, kErrUnknownKb,
                                  "unknown kb \"" + name + "\"");
  }
  std::string path = !req.path.empty() ? req.path : tenant->snapshot_path;
  if (path.empty()) {
    return DispatchOutcome::Error(Op::kSave, name, kErrBadRequest,
                                  "save requires a path");
  }
  // Exclusive: the saved image must correspond to one (seq, epoch).
  std::unique_lock<std::shared_mutex> lock(tenant->mu);
  Status s = tenant->kb->SaveSnapshot(path);
  if (!s.ok()) {
    return DispatchOutcome::Error(Op::kSave, name, kErrIo, s.message());
  }
  tenant->dirty = false;
  DispatchOutcome out;
  out.op = Op::kSave;
  out.kb = name;
  out.save.path = path;
  out.has_cursor = true;
  out.seq = tenant->seq;
  out.epoch = tenant->epoch;
  return out;
}

DispatchOutcome Dispatcher::Drop(const WireRequest& /*req*/,
                                 const std::string& name) {
  if (registry_->Find(name) == nullptr) {
    return DispatchOutcome::Error(Op::kDrop, name, kErrUnknownKb,
                                  "unknown kb \"" + name + "\"");
  }
  Status s = registry_->Drop(name);
  if (!s.ok()) {
    return DispatchOutcome::Error(Op::kDrop, name, kErrIo, s.message());
  }
  DispatchOutcome out;
  out.op = Op::kDrop;
  out.kb = name;
  return out;
}

}  // namespace server
}  // namespace gerel
