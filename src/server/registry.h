// Multi-tenant registry: named PreparedKb instances served by one
// process (DESIGN.md §10).
//
// Each tenant owns its PreparedKb *and its SymbolTable* — symbol tables
// are not thread-safe and parsing interns names, so a tenant-level
// shared_mutex arbitrates: request text is parsed under the exclusive
// lock (short — it only touches the symbol table), queries then execute
// and render under the shared lock (PreparedKb::Query takes its own
// internal shared lock; parsed Term/Rule ids stay valid because symbol
// tables only grow), and mutations (assert/retract/prepare/save/drop)
// hold the exclusive lock throughout.
//
// Replication cursor: every tenant carries (epoch, seq). epoch starts
// at 1 on prepare or snapshot load and bumps — resetting seq to 0 —
// whenever the model is rebuilt from the EDB (a re-materializing
// assert or retract). seq increments once per delta-path assert batch
// and once per DRed-path retract batch. A replica
// that applies batches in seq order within an epoch and resyncs on an
// epoch bump reconstructs the primary's model exactly (DESIGN.md §10);
// the cursor is already on the wire so replication needs no protocol
// break.
#ifndef GEREL_SERVER_REGISTRY_H_
#define GEREL_SERVER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/symbol_table.h"
#include "service/prepared_kb.h"

namespace gerel {
namespace server {

struct Tenant {
  std::string name;
  // Set when the registry prepared/loaded the KB itself; Adopt leaves
  // them null and points the raw aliases at caller-owned objects.
  std::unique_ptr<SymbolTable> owned_symbols;
  std::unique_ptr<PreparedKb> owned_kb;
  SymbolTable* symbols = nullptr;
  PreparedKb* kb = nullptr;
  // Tenant-level lock (see header comment). PreparedKb's internal lock
  // nests inside; never take a tenant lock while holding it.
  mutable std::shared_mutex mu;
  // Replication cursor; guarded by mu.
  uint64_t epoch = 1;
  uint64_t seq = 0;
  // Mutated since the last snapshot save; guarded by mu.
  bool dirty = false;
  // FNV-1a fingerprint of the source program ("" text → unchecked).
  uint64_t fingerprint = 0;
  // Default snapshot target (snapshot_dir/<name>.snap); empty when the
  // registry has no snapshot directory.
  std::string snapshot_path;
};

class TenantRegistry {
 public:
  struct Config {
    // Options applied to every Prepare/LoadSnapshot (budget, threads,
    // caps, cache size).
    PreparedKbOptions kb_options;
    // Warm-restart directory; tenants save to <dir>/<name>.snap. Empty
    // disables persistence.
    std::string snapshot_dir;
    size_t max_tenants = 64;
  };

  explicit TenantRegistry(Config config) : config_(std::move(config)) {}

  // Creates tenant `name` from `program_text`. With a snapshot dir, a
  // matching-fingerprint snapshot is loaded instead of re-materializing
  // (warm start) and a fresh prepare saves one for next time.
  // `max_rules` != 0 caps the rewrite/grounding/saturation stages for
  // this tenant only. Fails with kb_exists/bad_name/parse-style
  // messages (the dispatcher maps them to wire codes).
  struct PrepareInfo {
    bool loaded_snapshot = false;
  };
  Result<std::shared_ptr<Tenant>> Prepare(const std::string& name,
                                          const std::string& program_text,
                                          size_t max_rules,
                                          PrepareInfo* info);

  // Registers an externally-owned KB (the CLI serve path and tests).
  // `kb` and `symbols` must outlive the tenant.
  Result<std::shared_ptr<Tenant>> Adopt(const std::string& name,
                                        PreparedKb* kb,
                                        SymbolTable* symbols,
                                        const std::string& snapshot_path);

  std::shared_ptr<Tenant> Find(const std::string& name) const;
  // All tenants, name-sorted.
  std::vector<std::shared_ptr<Tenant>> All() const;

  // Unregisters `name`, saving first when dirty and persistent. Requests
  // already holding the tenant shared_ptr finish safely.
  Status Drop(const std::string& name);

  // Saves every dirty tenant with a snapshot path (graceful shutdown).
  // Returns the first error, after attempting all.
  Status SaveDirty();

  // Tenant names: [A-Za-z0-9_.-]+, no leading dot (they become file
  // names under the snapshot dir).
  static bool ValidName(const std::string& name);

  // FNV-1a over program text; never returns 0 (0 = unchecked).
  static uint64_t FingerprintText(const std::string& text);

  const Config& config() const { return config_; }

 private:
  Config config_;
  mutable std::mutex map_mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace server
}  // namespace gerel

#endif  // GEREL_SERVER_REGISTRY_H_
