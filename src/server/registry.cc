#include "server/registry.h"

#include "core/parser.h"

namespace gerel {
namespace server {

bool TenantRegistry::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

uint64_t TenantRegistry::FingerprintText(const std::string& text) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // 0 means "unchecked"; avoid colliding with it.
  return h == 0 ? 1 : h;
}

Result<std::shared_ptr<Tenant>> TenantRegistry::Prepare(
    const std::string& name, const std::string& program_text,
    size_t max_rules, PrepareInfo* info) {
  if (!ValidName(name)) {
    return Status::Error("invalid kb name \"" + name + "\"");
  }
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    if (tenants_.count(name) > 0) {
      return Status::Error("kb \"" + name + "\" already exists");
    }
    if (tenants_.size() >= config_.max_tenants) {
      return Status::Error("tenant limit reached (" +
                           std::to_string(config_.max_tenants) + ")");
    }
  }
  PreparedKbOptions options = config_.kb_options;
  if (max_rules > 0) {
    options.pipeline.expansion.max_rules = max_rules;
    options.pipeline.saturation.max_rules = max_rules;
    options.pipeline.grounding.max_rules = max_rules;
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->name = name;
  tenant->fingerprint = FingerprintText(program_text);
  if (!config_.snapshot_dir.empty()) {
    tenant->snapshot_path = config_.snapshot_dir + "/" + name + ".snap";
  }
  // Warm start: a snapshot whose stored fingerprint matches this
  // program text restores the materialized model without re-running the
  // pipeline. Any mismatch or corruption falls back to a fresh prepare.
  if (!tenant->snapshot_path.empty()) {
    auto symbols = std::make_unique<SymbolTable>();
    auto loaded = PreparedKb::LoadSnapshot(tenant->snapshot_path,
                                           symbols.get(), options,
                                           tenant->fingerprint);
    if (loaded.ok()) {
      tenant->owned_symbols = std::move(symbols);
      tenant->owned_kb = std::move(loaded).value();
      if (info != nullptr) info->loaded_snapshot = true;
    }
  }
  if (tenant->owned_kb == nullptr) {
    auto symbols = std::make_unique<SymbolTable>();
    auto program = ParseProgram(program_text, symbols.get());
    if (!program.ok()) return program.status();
    auto prepared =
        PreparedKb::Prepare(program.value().theory,
                            program.value().database, symbols.get(),
                            options);
    if (!prepared.ok()) return prepared.status();
    tenant->owned_symbols = std::move(symbols);
    tenant->owned_kb = std::move(prepared).value();
    tenant->owned_kb->set_snapshot_fingerprint(tenant->fingerprint);
    if (!tenant->snapshot_path.empty()) {
      // Best effort: a failed save leaves the tenant serving; the next
      // graceful shutdown retries via SaveDirty.
      tenant->dirty = !tenant->owned_kb->SaveSnapshot(tenant->snapshot_path)
                           .ok();
    }
  }
  tenant->symbols = tenant->owned_symbols.get();
  tenant->kb = tenant->owned_kb.get();
  std::lock_guard<std::mutex> lock(map_mu_);
  // Re-check: a racing prepare for the same name may have won while the
  // pipeline ran outside the map lock.
  auto [it, inserted] = tenants_.emplace(name, tenant);
  if (!inserted) {
    return Status::Error("kb \"" + name + "\" already exists");
  }
  return tenant;
}

Result<std::shared_ptr<Tenant>> TenantRegistry::Adopt(
    const std::string& name, PreparedKb* kb, SymbolTable* symbols,
    const std::string& snapshot_path) {
  if (!ValidName(name)) {
    return Status::Error("invalid kb name \"" + name + "\"");
  }
  auto tenant = std::make_shared<Tenant>();
  tenant->name = name;
  tenant->kb = kb;
  tenant->symbols = symbols;
  tenant->snapshot_path = snapshot_path;
  tenant->fingerprint = kb->snapshot_fingerprint();
  std::lock_guard<std::mutex> lock(map_mu_);
  auto [it, inserted] = tenants_.emplace(name, tenant);
  if (!inserted) {
    return Status::Error("kb \"" + name + "\" already exists");
  }
  return tenant;
}

std::shared_ptr<Tenant> TenantRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::All() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::vector<std::shared_ptr<Tenant>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(tenant);
  return out;
}

Status TenantRegistry::Drop(const std::string& name) {
  std::shared_ptr<Tenant> tenant;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::Error("unknown kb \"" + name + "\"");
    }
    tenant = std::move(it->second);
    tenants_.erase(it);
  }
  // In-flight requests still hold the shared_ptr; the final save waits
  // for them at the exclusive lock.
  std::unique_lock<std::shared_mutex> lock(tenant->mu);
  if (tenant->dirty && !tenant->snapshot_path.empty()) {
    Status s = tenant->kb->SaveSnapshot(tenant->snapshot_path);
    if (!s.ok()) return s;
    tenant->dirty = false;
  }
  return Status::Ok();
}

Status TenantRegistry::SaveDirty() {
  Status first = Status::Ok();
  for (const std::shared_ptr<Tenant>& tenant : All()) {
    std::unique_lock<std::shared_mutex> lock(tenant->mu);
    if (!tenant->dirty || tenant->snapshot_path.empty()) continue;
    Status s = tenant->kb->SaveSnapshot(tenant->snapshot_path);
    if (s.ok()) {
      tenant->dirty = false;
    } else if (first.ok()) {
      first = s;
    }
  }
  return first;
}

}  // namespace server
}  // namespace gerel
