// Wire protocol for the gerel KB server (docs/protocol.md).
//
// JSON-lines framing: one request object per line, one response object
// per line, in order. Requests name an operation and (for KB-scoped
// ops) a tenant:
//
//   {"op": "query", "kb": "main", "cq": "t(X, Y) -> q(X, Y)"}
//   {"op": "assert", "kb": "main", "facts": "e(a, b). e(b, c)."}
//
// Responses always carry "status": "ok" | "error"; errors carry a
// stable machine-readable code plus a human message:
//
//   {"status": "error", "op": "query", "error": {"code": "parse",
//    "message": "..."}}
//
// Every response for a mutation (and every KB-scoped read) carries the
// tenant's replication cursor: "epoch" (bumped when the model is
// rebuilt from scratch — prepare, snapshot load, re-materializing
// assert or retract) and "seq" (delta mutations applied within the
// epoch; a DRed retract is a delta step). A
// replica that applies delta batches in seq order within an epoch, and
// resyncs fully on an epoch bump, reconstructs the primary's model
// exactly; see DESIGN.md §10.
#ifndef GEREL_SERVER_WIRE_H_
#define GEREL_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/budget.h"
#include "core/status.h"
#include "server/json.h"
#include "service/stats.h"

namespace gerel {
namespace server {

// Stable wire error codes (the contract; never repurpose).
inline constexpr char kErrBadRequest[] = "bad_request";  // malformed frame
inline constexpr char kErrUnknownOp[] = "unknown_op";
inline constexpr char kErrUnknownKb[] = "unknown_kb";
inline constexpr char kErrKbExists[] = "kb_exists";
inline constexpr char kErrBadName[] = "bad_name";
inline constexpr char kErrParse[] = "parse";    // rule/fact/program text
inline constexpr char kErrFailed[] = "failed";  // semantic op failure
inline constexpr char kErrIo[] = "io";          // snapshot/file trouble
inline constexpr char kErrOversized[] = "oversized";
inline constexpr char kErrShutdown[] = "shutting_down";

enum class Op { kQuery, kAssert, kRetract, kPrepare, kStats, kSave, kDrop };

const char* OpName(Op op);

struct WireRequest {
  Op op = Op::kStats;
  // Tenant name; empty means "default" for KB-scoped ops and
  // "aggregate over all tenants" for stats.
  std::string kb;
  bool has_id = false;
  int64_t id = 0;
  std::string cq;       // query: CQ rule text.
  std::string facts;    // assert/retract: fact text (array frames joined).
  std::string program;  // prepare: inline program text.
  std::string path;     // prepare: program file; save: target path.
  size_t max_rules = 0;  // prepare: per-tenant stage cap (0 = default).
};

// Decodes one parsed frame into a request. On failure the status
// message is "<code>: <detail>" with code kErrBadRequest or
// kErrUnknownOp.
Result<WireRequest> DecodeRequest(const JsonValue& frame);

// --- Dispatch outcomes (shared by the socket server and the REPL) ---

struct QueryReply {
  std::vector<std::string> answers;  // Rendered atoms, set order.
  bool complete = true;
  bool cache_hit = false;
  DegradationReason degradation;
};

struct AssertReply {
  size_t new_atoms = 0;
  size_t derived_atoms = 0;
  bool delta = true;
};

struct RetractReply {
  size_t removed = 0;      // EDB atoms removed.
  size_t overdeleted = 0;  // Derived atoms the DRed cascade deleted.
  size_t rederived = 0;    // Overdeleted atoms restored by rederivation.
  // True: the DRed delta path ran (replicas apply it as a seq step).
  // False: the model was rebuilt from the surviving EDB (epoch bump).
  bool delta = true;
};

struct PrepareReply {
  std::string mode;
  size_t datalog_rules = 0;
  size_t model_atoms = 0;
  bool loaded_snapshot = false;
  bool complete = true;
};

struct StatsReply {
  // Per-tenant blocks, name-sorted; empty kb in the request aggregates
  // every tenant here plus a total.
  std::vector<std::pair<std::string, ServiceStats>> per_kb;
  ServiceStats total;
  bool aggregated = false;  // True when the request named no tenant.
};

struct SaveReply {
  std::string path;
};

// The result of dispatching one request: either an error (stable code +
// message) or the op-specific payload, plus the tenant's replication
// cursor for KB-scoped ops.
struct DispatchOutcome {
  bool ok = true;
  std::string error_code;
  std::string error_message;
  Op op = Op::kStats;
  std::string kb;  // Resolved tenant name ("" for aggregate stats).
  bool has_cursor = false;
  uint64_t seq = 0;
  uint64_t epoch = 0;
  QueryReply query;
  AssertReply assert_reply;
  RetractReply retract;
  PrepareReply prepare;
  StatsReply stats;
  SaveReply save;

  static DispatchOutcome Error(Op op, std::string kb, std::string code,
                               std::string message);
};

// Renders the one-line JSON response for an outcome. `has_id`/`id` echo
// the request's correlation id when present.
std::string EncodeResponse(const DispatchOutcome& outcome, bool has_id,
                           int64_t id);

// Renders a protocol-level error response (no decoded request — e.g. a
// malformed or oversized frame).
std::string EncodeProtocolError(const std::string& code,
                                const std::string& message);

}  // namespace server
}  // namespace gerel

#endif  // GEREL_SERVER_WIRE_H_
