#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/json.h"

namespace gerel {
namespace server {

namespace {

// recv timeout: the granularity at which blocked readers notice
// Shutdown().
constexpr int kPollMs = 200;

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // Peer went away; the connection is done.
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status SocketServer::Start() {
  if (started_) return Status::Error("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("invalid listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::Error(std::string("bind ") + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s = Status::Error(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  started_ = true;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  size_t workers = options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void SocketServer::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // Unblocks the accept poll; the loop exits on the flag.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never picked up by a worker.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // Timeout or EINTR; re-check the flag.
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A bounded recv timeout lets connection owners notice Shutdown()
    // even while their peer is idle.
    timeval tv{0, kPollMs * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void SocketServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping_ and nothing queued.
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void SocketServer::ServeConnection(int fd) {
  std::string buf;
  size_t scan_from = 0;
  // After an oversized frame, bytes are discarded until its newline so
  // the session can resynchronize.
  bool draining_oversized = false;
  char chunk[65536];
  while (true) {
    // Serve every complete line already buffered.
    size_t nl;
    while ((nl = buf.find('\n', scan_from)) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      scan_from = 0;
      if (draining_oversized) {
        draining_oversized = false;
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        if (!SendAll(fd, EncodeProtocolError(
                             kErrOversized,
                             "request line exceeds " +
                                 std::to_string(options_.max_line_bytes) +
                                 " bytes") +
                             "\n")) {
          return;
        }
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // Blank keep-alive lines are skipped.
      if (line.size() > options_.max_line_bytes) {
        // The whole frame arrived before the streaming cap could
        // trigger; report it just like a drained one.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        if (!SendAll(fd, EncodeProtocolError(
                             kErrOversized,
                             "request line exceeds " +
                                 std::to_string(options_.max_line_bytes) +
                                 " bytes") +
                             "\n")) {
          return;
        }
        continue;
      }
      std::string response;
      Result<JsonValue> frame = JsonValue::Parse(line);
      if (!frame.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        response = EncodeProtocolError(kErrBadRequest,
                                       frame.status().message());
      } else {
        Result<WireRequest> req = DecodeRequest(frame.value());
        if (!req.ok()) {
          // DecodeRequest encodes "<code>: <detail>" in the message.
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          const std::string& m = req.status().message();
          size_t sep = m.find(": ");
          std::string code =
              sep == std::string::npos ? kErrBadRequest : m.substr(0, sep);
          std::string detail =
              sep == std::string::npos ? m : m.substr(sep + 2);
          response = EncodeProtocolError(code, detail);
        } else {
          DispatchOutcome outcome = dispatcher_->Dispatch(req.value());
          requests_.fetch_add(1, std::memory_order_relaxed);
          response = EncodeResponse(outcome, req.value().has_id,
                                    req.value().id);
        }
      }
      response += "\n";
      if (!SendAll(fd, response)) return;
    }
    // The request in flight always finishes (response flushed above);
    // between requests, shutdown closes the connection.
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (buf.size() > options_.max_line_bytes) {
      // Too long with no newline yet: discard what we have and keep
      // discarding until the frame ends.
      draining_oversized = true;
      buf.clear();
      scan_from = 0;
    } else {
      scan_from = buf.size();
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return;  // EOF; a partial frame is dropped by design.
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // recv timeout: loop to re-check stopping_.
      }
      return;
    }
    if (draining_oversized) {
      // Only keep the tail that might contain the terminating newline.
      const char* end = chunk + n;
      const char* found =
          static_cast<const char*>(std::memchr(chunk, '\n', n));
      if (found != nullptr) {
        buf.append(found, end);
      }
      scan_from = 0;
      continue;
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace server
}  // namespace gerel
